package core

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Compile-time pipeline fusion.
//
// The serial combinator is realized at runtime as one goroutine plus one
// bounded stream per stage (serial.go), so a deep pipeline pays a frame hop,
// a channel handoff and a scheduler wakeup per stage per frame even though
// the records themselves are zero-alloc.  The S-Net vs CnC evaluation
// (arXiv:1305.7167) attributes most of S-Net's overhead gap to exactly this
// per-component communication cost, and S+Net argues the coordination layer
// should own such extra-functional execution decisions at compile time —
// which is what this pass does: Compile walks the plan graph, finds maximal
// linear chains of *fusible* stages, and replaces each chain with a single
// fusedNode that executes a flat op list per record on one goroutine, with
// no intermediate streams or frames.
//
// A stage is fusible when its run loop is a pure record-at-a-time function
// with no concurrency and no marker-sensitive state: filters, Observe taps,
// HideTags, and boxes pinned to strictly sequential invocation (W == 1).
// Everything else is a fusion barrier — concurrent boxes (reordering
// engine), synchrocells (cross-record state), split/star (replication) and
// parallel (routing) — and survives untouched; fusion only ever rewrites
// the serial spine between barriers.  Records crossing a fused segment ride
// the same copy-on-write shape-transition memos and slot programs as
// everywhere else, so the segment stays allocation-free in steady state
// (TestRecordPlaneZeroAlloc covers a fused deep pipeline).
//
// The rewrite is purely an execution-plan concern: Plan.Root(), Topology,
// Graph and the flow/analysis passes all keep seeing the un-fused blueprint,
// with the fusion groups reported alongside (Topology.FusionGroups), while
// Plan.Start and the service engines run Plan.ExecRoot().

// envFuseOn reads the SNET_FUSE triage override once per process: setting
// SNET_FUSE=0 disables fusion everywhere without recompiling, the
// counterpart of WithFusion(false) for deployments.
var envFuseOn = sync.OnceValue(func() bool { return os.Getenv("SNET_FUSE") != "0" })

// FusionGroup describes one fused segment of a compiled plan: the segment's
// runtime name (its stats identity, "fused.<name>.*") and the names of the
// constituent stages in pipeline order.
type FusionGroup struct {
	Name    string   `json:"name"`
	Members []string `json:"members"`
}

// fusibleStage reports whether a node can join a fused segment: its run
// behavior must be a sequential per-record function.  Boxes qualify only
// when pinned to W == 1 (NewBoxConcurrent(..., 1)); a box inheriting the
// run's WithBoxWorkers width (workers == 0) may run concurrently and is a
// barrier.
func fusibleStage(n Node) bool {
	switch n := n.(type) {
	case *identityNode, *hideNode, *filterNode:
		return true
	case *boxNode:
		return n.workers == 1
	}
	return false
}

// fuser is the state of one fusion pass.  memo maps every visited node to
// its rewritten form so a node instance shared between graph positions (a
// branch reused under two combinators) is rewritten exactly once and stays
// shared in the fused tree.
type fuser struct {
	memo   map[Node]Node
	groups []FusionGroup
}

// fuseTree rewrites the blueprint for execution, collapsing every maximal
// run of >= 2 consecutive fusible stages on a serial spine into one
// fusedNode.  It returns the rewritten root (root itself when nothing
// fused) and the fusion groups for the topology report.
func fuseTree(root Node) (Node, []FusionGroup) {
	f := &fuser{memo: map[Node]Node{}}
	return f.rewrite(root), f.groups
}

func (f *fuser) rewrite(n Node) Node {
	if m, ok := f.memo[n]; ok {
		return m
	}
	m := f.build(n)
	f.memo[n] = m
	return m
}

// build rewrites one node.  Combinators are shallow-copied (fresh struct
// literals — parallelNode carries a sync.Once and must not be value-copied)
// only when a child actually changed, so an unfusible subtree keeps its
// identity, including any compile-time routing tables already built on it.
func (f *fuser) build(n Node) Node {
	switch n := n.(type) {
	case *serialNode:
		stages := flattenSerial(n, nil)
		changed := false
		for i, s := range stages {
			if r := f.rewrite(s); r != s {
				stages[i] = r
				changed = true
			}
		}
		fused := f.fuseChain(stages)
		if !changed && len(fused) == len(stages) {
			return n
		}
		return rebuildSerial(fused)
	case *parallelNode:
		branches := make([]Node, len(n.branches))
		changed := false
		for i, b := range n.branches {
			branches[i] = f.rewrite(b)
			changed = changed || branches[i] != b
		}
		if !changed {
			return n
		}
		// Fresh tableOnce: the dispatch table is a pure function of the
		// branch list and rebuilds lazily over the rewritten branches (their
		// accepted types are identical by construction, fusedNode.sig being
		// first-stage-in / last-stage-out).
		return &parallelNode{label: n.label, det: n.det, branches: branches,
			branchKeys: n.branchKeys, kUnroutable: n.kUnroutable}
	case *starNode:
		op := f.rewrite(n.operand)
		if op == n.operand {
			return n
		}
		// The exit memo is a pure function of the exit pattern and is shared
		// across the unfold chain; the rewritten star keeps sharing it.
		return &starNode{label: n.label, det: n.det, operand: op,
			exit: n.exit, depth: n.depth, memo: n.memo}
	case *splitNode:
		op := f.rewrite(n.operand)
		if op == n.operand {
			return n
		}
		return &splitNode{label: n.label, det: n.det, operand: op,
			tag: n.tag, uncapped: n.uncapped}
	default:
		// Leaves (boxes, filters, sync, observe, hide) are never rewritten
		// in place — they only ever move into a fusedNode via fuseChain.
		return n
	}
}

// fuseChain groups maximal runs of consecutive fusible stages.  Runs of
// length 1 stay as they are: a lone guarded filter must remain a filterNode
// so best-match routing keeps seeing its guard (route.go), and a lone stage
// gains nothing from a wrapper anyway.
func (f *fuser) fuseChain(stages []Node) []Node {
	out := make([]Node, 0, len(stages))
	run := make([]Node, 0, len(stages))
	flush := func() {
		if len(run) >= 2 {
			out = append(out, f.newFused(run))
		} else {
			out = append(out, run...)
		}
		run = run[:0]
	}
	for _, s := range stages {
		if fusibleStage(s) {
			run = append(run, s)
			continue
		}
		flush()
		out = append(out, s)
	}
	flush()
	return out
}

// flattenSerial appends the serial spine of n to dst in pipeline order.
func flattenSerial(n Node, dst []Node) []Node {
	if s, ok := n.(*serialNode); ok {
		return flattenSerial(s.b, flattenSerial(s.a, dst))
	}
	return append(dst, n)
}

// rebuildSerial refolds a stage list into the left-leaning serial spine
// Serial builds.
func rebuildSerial(stages []Node) Node {
	n := stages[0]
	for _, m := range stages[1:] {
		n = &serialNode{label: autoName("serial"), a: n, b: m}
	}
	return n
}

// Op kinds of a fused segment's slot program.
const (
	fuseOpObserve = iota
	fuseOpHide
	fuseOpFilter
	fuseOpBox
)

// fusedOp is one stage of a fused segment's op list, pre-resolved at
// compile time so the per-record loop does no interface dispatch.
type fusedOp struct {
	kind    int
	observe *identityNode
	hide    *hideNode
	filter  *filterNode
	box     *boxNode
	// consumed is the box's input variant, precomputed for flow inheritance
	// (box ops only).
	consumed Variant
}

// fusedNode executes a chain of fusible stages as one goroutine: per input
// record it runs the compiled op list to completion — record values moving
// by direct call, shapes by the interned transition memos — and only the
// chain's final outputs touch a stream.  It is a blueprint like every other
// node; all execution state lives in the per-run fusedExec.
type fusedNode struct {
	label  string
	stages []Node
	ops    []fusedOp
	// Per-segment stat keys, preregistered as lock-free atomics before the
	// run goes hot (see Stats.preregister).
	kRecords, kApplied string
}

func (f *fuser) newFused(run []Node) *fusedNode {
	label := autoName("fused")
	n := &fusedNode{
		label:    label,
		stages:   append([]Node(nil), run...),
		ops:      make([]fusedOp, len(run)),
		kRecords: "fused." + label + ".records",
		kApplied: "fused." + label + ".applied",
	}
	members := make([]string, len(run))
	for i, s := range n.stages {
		members[i] = s.name()
		switch s := s.(type) {
		case *identityNode:
			n.ops[i] = fusedOp{kind: fuseOpObserve, observe: s}
		case *hideNode:
			n.ops[i] = fusedOp{kind: fuseOpHide, hide: s}
		case *filterNode:
			n.ops[i] = fusedOp{kind: fuseOpFilter, filter: s}
		case *boxNode:
			n.ops[i] = fusedOp{kind: fuseOpBox, box: s, consumed: NewVariant(s.boxSig.In...)}
		default:
			panic("core: newFused: unfusible stage " + s.name())
		}
	}
	f.groups = append(f.groups, FusionGroup{Name: label, Members: members})
	return n
}

func (n *fusedNode) name() string { return n.label }

func (n *fusedNode) String() string {
	parts := make([]string, len(n.stages))
	for i, s := range n.stages {
		parts[i] = s.String()
	}
	return "fused(" + strings.Join(parts, " .. ") + ")"
}

// sig is the chain's signature exactly as the serial spine would report it:
// first stage's input, last stage's output.  Routing tables built over a
// fused branch therefore dispatch identically to the un-fused blueprint.
func (n *fusedNode) sig(c *checker) (RecType, RecType) {
	in, _ := n.stages[0].sig(c)
	_, out := n.stages[len(n.stages)-1].sig(c)
	return in, out
}

func (n *fusedNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	x := newFusedExec(env, n)
	for i := range n.ops {
		if b := n.ops[i].box; b != nil {
			// The segment is one sequential instance of each constituent box.
			env.stats.Add(b.keys.instances, 1)
			env.stats.SetMax(b.keys.concurrency, 1)
			env.stats.SetMax(b.keys.inflight, 1)
		}
	}
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.mk != nil {
			// Foreign markers cross the segment in FIFO position: the
			// previous record was fully processed and shipped before this
			// marker is looked at.
			if !out.send(it) {
				in.Discard()
				return
			}
			continue
		}
		env.stats.Add(n.kRecords, 1)
		if !x.process(it.rec, out) {
			in.Discard()
			return
		}
	}
}

// fusedExec is the per-run execution state of one fused segment: the two
// swap buffers records move between as they pass from op to op, one
// buffer-mode emitter per box op, and the shared argument buffer.  All of
// it is reused across records, so a warm segment allocates nothing.
type fusedExec struct {
	env       *runEnv
	n         *fusedNode
	cur, next []*Record
	// scratch receives filter outputs before they are traced and appended
	// to next (applyInto and filterProg.apply both rebuild their dst).
	scratch  []*Record
	emitters []*Emitter
	argsBuf  []any
}

func newFusedExec(env *runEnv, n *fusedNode) *fusedExec {
	x := &fusedExec{env: env, n: n, emitters: make([]*Emitter, len(n.ops))}
	maxArgs := 0
	for i := range n.ops {
		if b := n.ops[i].box; b != nil {
			x.emitters[i] = &Emitter{env: env, box: b, consumed: n.ops[i].consumed}
			if len(b.boxSig.In) > maxArgs {
				maxArgs = len(b.boxSig.In)
			}
		}
	}
	x.argsBuf = make([]any, 0, maxArgs)
	return x
}

// process runs one input record through the whole op list and ships the
// segment's outputs.  It reports false when the run is gone (cancellation),
// in which case every record still owned by the segment has been returned
// to the arena and the caller must detach from its input.
func (x *fusedExec) process(rec *Record, out *streamWriter) bool {
	env := x.env
	x.cur = append(x.cur[:0], rec)
	applied := int64(0)
	for i := range x.n.ops {
		if len(x.cur) == 0 {
			break
		}
		op := &x.n.ops[i]
		x.next = x.next[:0]
		switch op.kind {
		case fuseOpObserve:
			o := op.observe
			for _, r := range x.cur {
				env.trace(o.label, "in", r)
				if o.fn != nil {
					o.fn(r)
				}
				x.next = append(x.next, r)
			}
			applied += int64(len(x.cur))
		case fuseOpHide:
			h := op.hide
			for _, r := range x.cur {
				for _, tag := range h.tags {
					r.DeleteTag(tag)
				}
				x.next = append(x.next, r)
			}
			applied += int64(len(x.cur))
		case fuseOpFilter:
			f := op.filter
			for _, r := range x.cur {
				env.trace(f.label, "in", r)
				if !f.matches(r) {
					env.stats.Add(f.kNomatch, 1)
					x.next = append(x.next, r)
					continue
				}
				var outs []*Record
				var err error
				if prog := f.program(r.shape); !prog.fallback {
					outs, err = prog.apply(r, x.scratch)
				} else {
					outs, err = f.spec.applyInto(r, x.scratch, true)
				}
				if err != nil {
					env.error(fmt.Errorf("core: filter %s: %w", f.label, err))
					env.stats.Add(f.kErrors, 1)
					releaseRecord(r) // dropped, not forwarded
					continue
				}
				env.stats.Add(f.kApplied, 1)
				applied++
				// The input was consumed: rewritten or inherited into fresh
				// outputs, never aliased.
				releaseRecord(r)
				for _, o := range outs {
					env.trace(f.label, "out", o)
					x.next = append(x.next, o)
				}
				if outs != nil {
					x.scratch = outs[:0]
				}
			}
		case fuseOpBox:
			b := op.box
			em := x.emitters[i]
			for ci, r := range x.cur {
				env.trace(b.label, "in", r)
				args, ok := b.bindArgs(r, x.argsBuf)
				if !ok {
					env.error(fmt.Errorf("core: box %s: input record %s does not match signature %s",
						b.label, r, b.boxSig))
					env.stats.Add(b.keys.rejected, 1)
					releaseRecord(r)
					continue
				}
				em.src, em.stopped, em.emitted = r, false, 0
				em.buf = &x.next
				b.invoke(env, args, em)
				em.src, em.buf = nil, nil
				releaseRecord(r)
				b.account(env, em)
				applied++
				if em.stopped {
					// The run was cancelled mid-invocation: reclaim every
					// record the segment still owns.
					for _, rest := range x.cur[ci+1:] {
						releaseRecord(rest)
					}
					for _, o := range x.next {
						releaseRecord(o)
					}
					x.cur, x.next = x.cur[:0], x.next[:0]
					return false
				}
			}
		}
		x.cur, x.next = x.next, x.cur
	}
	if applied > 0 {
		env.stats.Add(x.n.kApplied, applied)
	}
	for i, r := range x.cur {
		if !out.sendRecord(r) {
			// The failed record was reclaimed by the transport's cancellation
			// path; outputs never handed to it are ours.
			for _, rest := range x.cur[i+1:] {
				releaseRecord(rest)
			}
			x.cur = x.cur[:0]
			return false
		}
	}
	x.cur = x.cur[:0]
	return true
}

// preregisterFusedStats walks an execution tree and installs the lock-free
// atomic counters for every fused segment's per-record keys.  Start calls
// it before any run goroutine launches; afterwards the Stats hot map is
// read-only and its reads need no lock.
func preregisterFusedStats(n Node, s *Stats) {
	switch n := n.(type) {
	case *fusedNode:
		s.preregister(n.kRecords, n.kApplied)
	case *serialNode:
		preregisterFusedStats(n.a, s)
		preregisterFusedStats(n.b, s)
	case *parallelNode:
		for _, b := range n.branches {
			preregisterFusedStats(b, s)
		}
	case *starNode:
		preregisterFusedStats(n.operand, s)
	case *splitNode:
		preregisterFusedStats(n.operand, s)
	}
}
