package core

import (
	"fmt"
	"testing"
	"time"
)

// The detprop × arena matrix: the deterministic-order guarantee and the
// record-arena accounting must both hold at every combination of box worker
// width W and stream batch size B — the two knobs that reshape how many
// records are in flight and which code paths (sequential vs concurrent box
// engine, single-item vs slab-backed frames) carry them.

// poolLiveSettled samples the arena's live count once background drainers
// from earlier tests have stopped moving it.
func poolLiveSettled(t *testing.T) int64 {
	t.Helper()
	live := PoolStats().Live()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		l := PoolStats().Live()
		if l == live {
			return live
		}
		live = l
	}
	return live
}

// waitPoolLive polls until the arena's live count returns to base, dumping
// the counters on timeout — a pooled-but-unreleased record anywhere in the
// runtime's release audit lands here.
func waitPoolLive(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if PoolStats().Live() == base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := PoolStats()
	t.Fatalf("record arena leak: live=%d want %d (acquired=%d recycled=%d disowned=%d)",
		s.Live(), base, s.Acquired, s.Recycled, s.Disowned)
}

// pooledSeqInputs is seqInputs built from arena records, so the ingress leg
// of the pipeline is pooled too (RunAll inputs are consumed by the first
// node, which releases them; outputs crossing Handle.Out are disowned).
func pooledSeqInputs(n int, extra func(i int, r *Record)) []*Record {
	out := make([]*Record, n)
	for i := 0; i < n; i++ {
		out[i] = AcquireRecord().SetTag("seq", i)
		if extra != nil {
			extra(i, out[i])
		}
	}
	return out
}

// TestDetPoolMatrix runs a deterministic star-inside-split network — box
// emissions, filter rewrites, replica creation, order-restoring merges — at
// every (W, B) in {1,4,16} × {1,8,64} and checks three invariants per cell:
// input order survives to the output, records in == records out with nothing
// discarded, and the arena's live count returns to its pre-run baseline.
func TestDetPoolMatrix(t *testing.T) {
	for _, w := range []int{1, 4, 16} {
		for _, b := range []int{1, 8, 64} {
			t.Run(fmt.Sprintf("W%d_B%d", w, b), func(t *testing.T) {
				base := poolLiveSettled(t)
				inner := Serial(
					StarDet(varDecBox(int64(w*100+b)), MustParsePattern("{<done>}")),
					MustFilter("{<seq>,<done>} -> {<seq>, <out>=<seq>+1}"),
				)
				n := SplitDet(inner, "k")
				inputs := pooledSeqInputs(detN, func(i int, r *Record) {
					r.SetTag("k", i%3).SetTag("n", i%5)
				})
				out, stats := runNet(t, n, inputs,
					WithBoxWorkers(w), WithStreamBatch(b))
				assertOrdered(t, collectSeqs(t, out), detN)
				for i, r := range out {
					if tagOf(t, r, "out") != i+1 {
						t.Fatalf("record %d: filter output <out>=%d, want %d",
							i, tagOf(t, r, "out"), i+1)
					}
				}
				if d := stats.Counter("stream.discarded"); d != 0 {
					t.Fatalf("drained run discarded %d records", d)
				}
				if stats.Counter(statStreamRecords) < int64(detN) {
					t.Fatalf("transport counted %d records for %d inputs",
						stats.Counter(statStreamRecords), detN)
				}
				waitPoolLive(t, base)
			})
		}
	}
}

// TestPoolAccountingNondet is the same arena invariant on the
// nondeterministic variants (no sort-record machinery): every record still
// has exactly one release point.
func TestPoolAccountingNondet(t *testing.T) {
	base := poolLiveSettled(t)
	n := Split(Serial(
		Star(varDecBox(3), MustParsePattern("{<done>}")),
		MustFilter("{<seq>,<done>} -> {<seq>}"),
	), "k")
	inputs := pooledSeqInputs(detN, func(i int, r *Record) {
		r.SetTag("k", i%4).SetTag("n", i%3)
	})
	out, _ := runNet(t, n, inputs, WithBoxWorkers(4), WithStreamBatch(8))
	assertMultiset(t, collectSeqs(t, out), detN)
	waitPoolLive(t, base)
}

// TestPoolAccountingSync covers the synchrocell paths: merged records are
// rebuilt into a pooled output, stored partners are released on fire, and a
// starved cell's stash is released at close.
func TestPoolAccountingSync(t *testing.T) {
	base := poolLiveSettled(t)
	n := Sync(MustParsePattern("{a}"), MustParsePattern("{b}"))
	mk := func(label string, i int) *Record {
		return AcquireRecord().SetField(label, i).SetTag("seq", i)
	}
	// One full match fires the cell; after firing it is an identity, so the
	// remaining three records pass through untouched.
	inputs := []*Record{mk("a", 0), mk("b", 0), mk("b", 1), mk("a", 1), mk("a", 2)}
	out, _ := runNet(t, n, inputs)
	if len(out) != 4 {
		t.Fatalf("got %d records, want 1 merged + 3 passed through", len(out))
	}
	waitPoolLive(t, base)

	// A cell that never completes: the first {a} is stored, later ones pass
	// through, and close releases the starved stash (counted, not emitted) —
	// still fully accounted.
	starved := NamedSync("stash", MustParsePattern("{a}"), MustParsePattern("{b}"))
	out, stats := runNet(t, starved, []*Record{mk("a", 0), mk("a", 1)})
	if len(out) != 1 {
		t.Fatalf("starved cell emitted %d records, want 1 passed through", len(out))
	}
	if s := stats.Counter("sync.stash.starved"); s != 1 {
		t.Fatalf("sync.stash.starved = %d, want 1", s)
	}
	waitPoolLive(t, base)
}

// TestPoolDisownAtBoundary pins the boundary semantics: records read from
// Handle.Out left the arena (disowned, GC-managed), so releasing them is a
// no-op and holding them forever is not a leak.
func TestPoolDisownAtBoundary(t *testing.T) {
	base := poolLiveSettled(t)
	before := PoolStats()
	out, _ := runNet(t, incBox("pd", 1), pooledSeqInputs(8, func(i int, r *Record) {
		r.SetTag("n", i)
	}))
	if len(out) != 8 {
		t.Fatalf("got %d records", len(out))
	}
	waitPoolLive(t, base)
	after := PoolStats()
	if got := after.Disowned - before.Disowned; got < 8 {
		t.Fatalf("boundary disowned %d records, want >= 8", got)
	}
	for _, r := range out {
		ReleaseRecord(r) // must be a no-op on disowned records
	}
	for i, r := range out {
		if tagOf(t, r, "n") != i+1 {
			t.Fatalf("disowned record %d mutated after no-op release", i)
		}
	}
	waitPoolLive(t, base)
}
