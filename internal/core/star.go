package core

import "fmt"

// starNode is serial replication A**(pattern): a demand-driven, conceptually
// infinite chain A..A..A.. tapped before every replica; records matching the
// exit pattern leave the chain and merge into the output stream (§4).
//
// Each starNode instance is one tap point (stage dispatcher).  The chain
// unfolds lazily: the first record that does not exit instantiates the next
// replica as serial(operand, star-at-depth+1).
type starNode struct {
	label   string
	det     bool
	operand Node
	exit    Pattern
	depth   int // stage index; the entry dispatcher is depth 0
	// memo caches the exit pattern's variant check per record shape; every
	// lazily-unfolded stage of the chain shares the entry dispatcher's memo
	// (the pattern is the same at every depth).
	memo *matchMemo
}

// Star builds the nondeterministic serial replicator, the paper's
// A ** (pattern): exits merge as soon as they are produced.
func Star(operand Node, exit Pattern) Node {
	return &starNode{label: autoName("star"), operand: operand, exit: exit,
		memo: newMatchMemo(exit.Variant)}
}

// StarDet builds the deterministic serial replicator A * (pattern): the
// merged exit stream preserves the causal order of the inputs.
func StarDet(operand Node, exit Pattern) Node {
	return &starNode{label: autoName("star"), det: true, operand: operand, exit: exit,
		memo: newMatchMemo(exit.Variant)}
}

// NamedStar is Star with an explicit stats label, so experiments can read
// "star.<name>.replicas" counters (used to verify the paper's unfolding
// bounds: ≤ 81 stages for a 9×9 sudoku, Fig. 1).
func NamedStar(name string, operand Node, exit Pattern) Node {
	return &starNode{label: name, operand: operand, exit: exit,
		memo: newMatchMemo(exit.Variant)}
}

// NamedStarDet is StarDet with an explicit stats label.
func NamedStarDet(name string, operand Node, exit Pattern) Node {
	return &starNode{label: name, det: true, operand: operand, exit: exit,
		memo: newMatchMemo(exit.Variant)}
}

func (n *starNode) name() string { return n.label }

func (n *starNode) String() string {
	op := " ** "
	if n.det {
		op = " * "
	}
	return "(" + n.operand.String() + op + n.exit.String() + ")"
}

func (n *starNode) sig(c *checker) (RecType, RecType) {
	opIn, opOut := n.operand.sig(c)
	if c != nil {
		c.checkStar(n, opOut)
	}
	in := opIn.Union(RecType{n.exit.Variant})
	// Records leave when they match the exit pattern; their type is at
	// least the pattern's variant.
	out := RecType{n.exit.Variant}
	return in, out
}

func (n *starNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	f := newFanout(env, n.det, in)
	exitPort := f.addBranch(nil) // branch 0: records leaving the chain here
	var chainPort *branchPort    // branch 1: operand .. star(depth+1), lazy
	mergeDone := make(chan struct{})
	go func() {
		f.mergeLoop(out, f.level)
		close(mergeDone)
	}()
	for {
		it, ok := in.recv()
		if !ok {
			break
		}
		if it.mk != nil {
			if !f.forwardMarker(it.mk) {
				break
			}
			continue
		}
		rec := it.rec
		if n.memo.matches(n.exit, rec) {
			env.trace(n.label, "exit", rec)
			if !f.route(exitPort, rec) || !f.afterRoute() {
				break
			}
			continue
		}
		if chainPort == nil {
			if n.depth >= env.maxDepth {
				env.error(fmt.Errorf("core: star %s: unfolding beyond depth %d; dropping %s",
					n.label, env.maxDepth, rec))
				env.stats.Add("star."+n.label+".overflow", 1)
				releaseRecord(rec) // dropped, not forwarded
				continue
			}
			env.stats.Add("star."+n.label+".replicas", 1)
			env.stats.SetMax("star."+n.label+".depth", int64(n.depth+1))
			next := &starNode{label: n.label, det: n.det, operand: n.operand,
				exit: n.exit, depth: n.depth + 1, memo: n.memo}
			chainPort = f.addBranch(&serialNode{label: autoName("serial"), a: n.operand, b: next})
		}
		if !f.route(chainPort, rec) || !f.afterRoute() {
			break
		}
	}
	in.Discard()
	f.finish()
	<-mergeDone
}
