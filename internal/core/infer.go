package core

import "fmt"

// Network type inference (§4: "type inference algorithms developed for S-Net
// take full account of subtyping and flow inheritance").
//
// Inference here is necessarily an approximation: flow inheritance can add
// arbitrary labels at runtime, so a variant produced upstream may carry more
// labels than its static type.  The checker therefore distinguishes definite
// acceptance (some input variant is a subset of the producer's variant) from
// possible acceptance via inheritance, reporting the latter as warnings and
// outright impossibilities as errors.

// Diagnostic is one finding of the network checker.
type Diagnostic struct {
	Node    string
	Warning bool // false = error
	Msg     string
}

func (d Diagnostic) String() string {
	kind := "error"
	if d.Warning {
		kind = "warning"
	}
	return fmt.Sprintf("%s: %s: %s", kind, d.Node, d.Msg)
}

type checker struct {
	diags []Diagnostic
}

func (c *checker) errorf(node, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Node: node, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) warnf(node, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Node: node, Warning: true, Msg: fmt.Sprintf(format, args...)})
}

// checkSerial validates A..B: every output variant of A should be accepted
// by some input variant of B.
func (c *checker) checkSerial(n *serialNode, aOut, bIn RecType) {
	for _, v := range aOut {
		definite, possible := false, false
		for _, w := range bIn {
			if w.SubsetOf(v) {
				definite = true
				break
			}
			// Inheritance can only add labels, never remove, so
			// acceptance is possible iff the missing labels could
			// arrive by inheritance — conservatively always
			// possible; impossibility cannot be proven for
			// non-empty w \ v, so report a warning.
			possible = true
		}
		switch {
		case definite:
		case possible:
			c.warnf(n.label,
				"output variant %s is not statically accepted by %s; acceptance relies on flow inheritance",
				v, bIn)
		default:
			c.errorf(n.label, "output variant %s cannot be accepted by %s", v, bIn)
		}
	}
}

// checkStar warns when the operand's output can never reach the exit
// pattern (a chain that can only grow).
func (c *checker) checkStar(n *starNode, opOut RecType) {
	for _, v := range opOut {
		if n.exit.Variant.SubsetOf(v) {
			return // some output variant statically matches the exit
		}
	}
	c.warnf(n.label,
		"no operand output variant statically matches exit pattern %s; termination relies on flow inheritance or guards",
		n.exit)
}

// Infer computes the network's type signature (input and output multivariant
// types).
func Infer(root Node) (in, out RecType) {
	return root.sig(nil)
}

// Check infers the network's signature and returns all diagnostics.
func Check(root Node) (in, out RecType, diags []Diagnostic) {
	c := &checker{}
	in, out = root.sig(c)
	return in, out, c.diags
}
