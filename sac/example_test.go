package sac_test

import (
	"fmt"

	"repro/sac"
	saclang "repro/sac/lang"
)

// The paper's §2 examples through the public with-loop API.
func ExampleGenarray() {
	p := sac.NewPool(1)
	v := sac.Genarray(p, []int{6}, 0,
		sac.GenHalfOpen([]int{1}, []int{4}, func(iv []int) int { return 1 }),
		sac.GenHalfOpen([]int{3}, []int{5}, func(iv []int) int { return 2 }))
	fmt.Println(v)
	// Output: [0,1,1,2,2,0]
}

func ExampleModarray() {
	p := sac.NewPool(1)
	a := sac.Vector(0, 1, 1, 2, 2, 0)
	fmt.Println(sac.Modarray(p, a,
		sac.GenHalfOpen([]int{0}, []int{3}, func(iv []int) int { return 3 })))
	// Output: [3,3,3,2,2,0]
}

func ExampleFold() {
	p := sac.NewPool(2)
	sum := sac.Fold(p, 0, func(a, b int) int { return a + b },
		sac.GenHalfOpen([]int{0}, []int{101}, func(iv []int) int { return iv[0] }))
	fmt.Println(sum)
	// Output: 5050
}

// Interpreting the paper's own Core SaC source.
func ExampleNew() {
	prog := saclang.MustParse(saclang.Prelude + `
		int[*] main() {
			a = [1,2,3];
			return( a ++ [4,5]);
		}`)
	itp := saclang.New(prog, sac.NewPool(1))
	out, _ := itp.Call("main", nil, nil)
	fmt.Println(out[0])
	// Output: [1,2,3,4,5]
}
