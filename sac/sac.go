// Package sac is the public API of the SaC array substrate: state-less
// n-dimensional arrays with the with-loop comprehensions of §2 of the paper
// (genarray, modarray, fold), executed data-parallel on a worker pool.
//
//	p := sac.NewPool(4) // a "4-thread SaC executable"
//	v := sac.Genarray(p, []int{5}, 0,
//	    sac.GenHalfOpen([]int{1}, []int{4}, func(iv []int) int { return 42 }))
//	// v == [0,42,42,42,0]
//
// See sac/lang for the interpreter that runs Core SaC source directly.
package sac

import (
	"repro/internal/array"
	"repro/internal/sched"
)

type (
	// Pool bounds the data-parallel width of with-loop execution.
	Pool = sched.Pool
	// ShapeError reports invalid shapes, bounds or indices.
	ShapeError = array.ShapeError
)

// Array is an n-dimensional array; scalars are rank-0 arrays.
type Array[T any] = array.Array[T]

// Gen describes one with-loop generator.
type Gen[T any] = array.Gen[T]

// Pool management.
var (
	NewPool          = sched.New
	NewPoolWithGrain = sched.NewWithGrain
	DefaultPool      = sched.Default
	SetDefaultPool   = sched.SetDefault
)

// Construction.
func New[T any](shape []int, fill T) *Array[T]         { return array.New(shape, fill) }
func FromSlice[T any](shape []int, data []T) *Array[T] { return array.FromSlice(shape, data) }
func Scalar[T any](v T) *Array[T]                      { return array.Scalar(v) }
func Vector[T any](vs ...T) *Array[T]                  { return array.Vector(vs...) }

// Iota returns [0, 1, ..., n-1].
var Iota = array.Iota

// With-loops (§2).
func GenHalfOpen[T any](lower, upper []int, body func(iv []int) T) Gen[T] {
	return array.GenHalfOpen(lower, upper, body)
}
func GenClosed[T any](lower, upper []int, body func(iv []int) T) Gen[T] {
	return array.GenClosed(lower, upper, body)
}
func Genarray[T any](p *Pool, shape []int, def T, gens ...Gen[T]) *Array[T] {
	return array.Genarray(p, shape, def, gens...)
}
func Modarray[T any](p *Pool, src *Array[T], gens ...Gen[T]) *Array[T] {
	return array.Modarray(p, src, gens...)
}
func Fold[T any](p *Pool, neutral T, op func(a, b T) T, gens ...Gen[T]) T {
	return array.Fold(p, neutral, op, gens...)
}

// Elementwise operations and reductions.
func Map[T, U any](p *Pool, a *Array[T], f func(T) U) *Array[U] { return array.Map(p, a, f) }
func Zip[T, U, V any](p *Pool, a *Array[T], b *Array[U], f func(T, U) V) *Array[V] {
	return array.Zip(p, a, b, f)
}
func Add[T array.Number](p *Pool, a, b *Array[T]) *Array[T] { return array.Add(p, a, b) }
func Sub[T array.Number](p *Pool, a, b *Array[T]) *Array[T] { return array.Sub(p, a, b) }
func Mul[T array.Number](p *Pool, a, b *Array[T]) *Array[T] { return array.Mul(p, a, b) }
func Sum[T array.Number](p *Pool, a *Array[T]) T            { return array.Sum(p, a) }
func CountTrue(p *Pool, a *Array[bool]) int                 { return array.CountTrue(p, a) }
func All(p *Pool, a *Array[bool]) bool                      { return array.All(p, a) }
func Any(p *Pool, a *Array[bool]) bool                      { return array.Any(p, a) }
func Concat[T any](a, b *Array[T]) *Array[T]                { return array.Concat(a, b) }
func Equal[T comparable](a, b *Array[T]) bool               { return array.Equal(a, b) }
func Where(a *Array[bool]) [][]int                          { return array.Where(a) }

// SaC standard-library structural operations (take, drop, rotate, reverse,
// transpose, tile — the "universally applicable array operations" of §2).
func Take[T any](a *Array[T], n int) *Array[T]         { return array.Take(a, n) }
func Drop[T any](a *Array[T], n int) *Array[T]         { return array.Drop(a, n) }
func Rotate[T any](a *Array[T], axis, n int) *Array[T] { return array.Rotate(a, axis, n) }
func Reverse[T any](a *Array[T], axis int) *Array[T]   { return array.Reverse(a, axis) }
func Transpose[T any](p *Pool, a *Array[T]) *Array[T]  { return array.Transpose(p, a) }
func Tile[T any](a *Array[T], reps int) *Array[T]      { return array.Tile(a, reps) }
func MinValue[T array.Number](a *Array[T]) T           { return array.MinValue(a) }
func MaxValue[T array.Number](a *Array[T]) T           { return array.MaxValue(a) }
