// Package lang is the public API of the Core SaC interpreter (§2 of the
// paper): parse SaC source and call its functions, with with-loops running
// data-parallel on a sac.Pool.
//
//	prog := lang.MustParse(lang.Prelude + `
//	    int[*] main() {
//	        res = with { ([1] <= iv < [4]) : 42; } : genarray( [5], 0);
//	        return( res);
//	    }`)
//	itp := lang.New(prog, sac.NewPool(2))
//	out, err := itp.Call("main", nil, nil)
//
// The embedded SudokuSaC program is the paper's §3/§5 solver; snet_out
// calls are delivered through the EmitFn hook, which is how interpreted SaC
// functions become S-Net boxes.
package lang

import "repro/internal/sacvm"

type (
	// Program is a parsed SaC module.
	Program = sacvm.Program
	// Interp evaluates a parsed module.
	Interp = sacvm.Interp
	// Value is a SaC value (int/bool/double array; scalars are rank 0).
	Value = sacvm.Value
	// ValueKind is a value's element type.
	ValueKind = sacvm.ValueKind
	// EmitFn receives snet_out calls (box embedding hook).
	EmitFn = sacvm.EmitFn
	// Error is a lex, parse or evaluation failure with position.
	Error = sacvm.Error
	// Pos is a source position.
	Pos = sacvm.Pos
)

const (
	KindInt    = sacvm.KindInt
	KindBool   = sacvm.KindBool
	KindDouble = sacvm.KindDouble
)

var (
	Parse     = sacvm.Parse
	MustParse = sacvm.MustParse
	New       = sacvm.New

	IntValue     = sacvm.IntValue
	BoolValue    = sacvm.BoolValue
	DoubleValue  = sacvm.DoubleValue
	IntScalar    = sacvm.IntScalar
	BoolScalar   = sacvm.BoolScalar
	DoubleScalar = sacvm.DoubleScalar
	IntVector    = sacvm.IntVector
)

// Embedded programs.
const (
	// Prelude is the paper's §2 vector concatenation operator (++).
	Prelude = sacvm.Prelude
	// SudokuSaC is the paper's sudoku solver in Core SaC.
	SudokuSaC = sacvm.SudokuSaC
	// SudokuGenSaC generalises the solver to any n²×n² board.
	SudokuGenSaC = sacvm.SudokuGenSaC
)
