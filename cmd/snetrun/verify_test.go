package main

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// cyclic seeds a wait-for cycle: the only producer of the "b" half of
// the join is downstream of the synchrocell itself.
const cyclic = `
box gen (<seed>) -> (a, <k>);
box toB (a, <k>) -> (b, <k>);
net deadcycle connect gen .. [| {a, <k>}, {b, <k>} |] .. toB;
`

func TestVerifyCleanProgram(t *testing.T) {
	path := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	if err := run([]string{"-verify", path}, &stdout, &stderr); err != nil {
		t.Fatalf("verify: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"net countdown", "deadlock-free", "memory bound", "stream edges"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyDeadlockFailsWithTrace(t *testing.T) {
	path := writeProgram(t, cyclic)
	var stdout, stderr strings.Builder
	err := run([]string{"-verify", path}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("deadlock-positive program must fail -verify:\n%s", stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"DEADLOCK-POSITIVE",
		"[deadlock-cycle]",
		"trace[0]",
		"the wait-for cycle closes here",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyBudgetOverflow(t *testing.T) {
	path := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	err := run([]string{"-verify", "-budget", "10", path}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("a 10-record budget must overflow:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[capacity-overflow]") {
		t.Errorf("output missing capacity-overflow finding:\n%s", stdout.String())
	}
	// The same program passes with a generous budget.
	stdout.Reset()
	if err := run([]string{"-verify", "-budget", "100000000", path}, &stdout, &stderr); err != nil {
		t.Fatalf("generous budget must pass: %v\n%s", err, stdout.String())
	}
}

// TestVerifyJSONSchema decodes the -json document with unknown fields
// disallowed: the emitted output must match the declared snet-verify/1
// schema structures exactly.
func TestVerifyJSONSchema(t *testing.T) {
	clean := writeProgram(t, countdown)
	bad := writeProgram(t, cyclic)
	var stdout, stderr strings.Builder
	err := run([]string{"-verify", "-json", clean, bad}, &stdout, &stderr)
	if err == nil {
		t.Fatal("mixed input with a deadlock must exit nonzero")
	}
	dec := json.NewDecoder(bytes.NewReader([]byte(stdout.String())))
	dec.DisallowUnknownFields()
	var out verifyOutput
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("schema violation: %v\n%s", err, stdout.String())
	}
	if out.Schema != verifySchema {
		t.Errorf("schema = %q, want %q", out.Schema, verifySchema)
	}
	if out.OK {
		t.Error("ok must be false with a deadlock-positive net")
	}
	if len(out.Files) != 2 {
		t.Fatalf("want 2 files, got %d", len(out.Files))
	}
	cn := out.Files[0].Nets[0]
	if !cn.DeadlockFree || cn.Bound == nil || !cn.Bound.Finite || cn.Bound.Total <= 0 {
		t.Errorf("countdown: want deadlock-free finite bound, got %+v", cn)
	}
	dn := out.Files[1].Nets[0]
	if dn.DeadlockFree {
		t.Errorf("deadcycle: want deadlock-positive, got %+v", dn)
	}
	found := false
	for _, f := range dn.Findings {
		if f.Code == "deadlock-cycle" && len(f.Trace) >= 2 {
			found = true
			for _, s := range f.Trace {
				if s.Path == "" || s.State == "" {
					t.Errorf("trace step missing path/state: %+v", s)
				}
			}
		}
	}
	if !found {
		t.Errorf("no deadlock-cycle finding with a ≥2-step trace in %+v", dn.Findings)
	}
}

// TestVerifyByteIdenticalAcrossRuns pins the determinism satellite: three
// verifier passes over the same program emit the same document modulo the
// process-global combinator counter in auto-generated node names.
func TestVerifyByteIdenticalAcrossRuns(t *testing.T) {
	counterPat := regexp.MustCompile(`#\d+`)
	path := writeProgram(t, cyclic)
	var first string
	for i := 0; i < 3; i++ {
		var stdout, stderr strings.Builder
		_ = run([]string{"-verify", "-json", path}, &stdout, &stderr)
		got := counterPat.ReplaceAllString(stdout.String(), "#n")
		if i == 0 {
			first = got
		} else if got != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}
