package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// countdown is a tiny end-to-end program over the built-in demo boxes: inc
// feeds a deterministic star of dec that emits <done> at zero.
const countdown = `
box inc (<n>) -> (<n>);
box dec (<n>) -> (<n>) | (<n>, <done>);
net countdown connect inc .. (dec ** {<done>});
`

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.snet")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCountdownEndToEnd(t *testing.T) {
	path := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	err := run([]string{"-run", "-record", "{<n>=3}", "-record", "{<n>=1}", path},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"parsed:",
		"net countdown",
		"2 output records:",
		"{<done>=1, <n>=0}",
		"box.inc.calls",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStreamBatchFlag(t *testing.T) {
	path := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	err := run([]string{"-run", "-stream-batch", "64", "-record", "{<n>=5}", path},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "1 output records:") {
		t.Errorf("expected one output record:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "stream.frames") {
		t.Errorf("expected transport counters in statistics:\n%s", stdout.String())
	}
}

func TestRunTypecheckOnly(t *testing.T) {
	path := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	if err := run([]string{path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout.String(), "output records") {
		t.Error("should not run without -run")
	}
	if !strings.Contains(stdout.String(), "net countdown :") {
		t.Errorf("missing inferred type line:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"/nonexistent/x.snet"}, &stdout, &stderr); err == nil {
		t.Error("expected error for missing file")
	}
	bad := writeProgram(t, "net broken connect ;;;")
	if err := run([]string{bad}, &stdout, &stderr); err == nil {
		t.Error("expected parse error")
	}
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Error("expected usage error with no arguments")
	}
}

// -check on a clean program prints the inferred signatures and succeeds.
func TestCheckCleanProgram(t *testing.T) {
	path := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	if err := run([]string{"-check", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run -check: %v (out: %s)", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "net countdown : {<n>} -> {<done>}") {
		t.Fatalf("output %q missing the inferred signature", stdout.String())
	}
}

// -check stubs box implementations (no registry bindings needed) and
// reports definite type errors with their source positions.
func TestCheckReportsTypeErrorsWithPositions(t *testing.T) {
	src := `box produce (n) -> (a,b);
box eatAB (a,b) -> (r);
box eatAC (a,c) -> (r);

net main connect
  produce .. (eatAB || eatAC);
`
	path := writeProgram(t, src)
	var stdout, stderr strings.Builder
	err := run([]string{"-check", path}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("run -check accepted a net with an unreachable branch (out: %s)", stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"unreachable-branch", "3:1", "branch[1]", "eatAC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

// -check accepts several files at once (the CI smoke step shape).
func TestCheckMultipleFiles(t *testing.T) {
	a := writeProgram(t, countdown)
	b := writeProgram(t, "box double (<n>) -> (<n>);\nnet twice connect double .. double;\n")
	var stdout, stderr strings.Builder
	if err := run([]string{"-check", a, b}, &stdout, &stderr); err != nil {
		t.Fatalf("run -check: %v (out: %s)", err, stdout.String())
	}
	if got := strings.Count(stdout.String(), "net "); got != 2 {
		t.Fatalf("expected 2 net reports, got %d:\n%s", got, stdout.String())
	}
}

// -check -net over several files succeeds when the named net exists in any
// of them, and fails when it exists in none.
func TestCheckNamedNetAcrossFiles(t *testing.T) {
	a := writeProgram(t, countdown)
	b := writeProgram(t, "box double (<n>) -> (<n>);\nnet twice connect double .. double;\n")
	var stdout, stderr strings.Builder
	if err := run([]string{"-check", "-net", "countdown", a, b}, &stdout, &stderr); err != nil {
		t.Fatalf("run -check -net: %v (out: %s)", err, stdout.String())
	}
	stdout.Reset()
	if err := run([]string{"-check", "-net", "nosuch", a, b}, &stdout, &stderr); err == nil {
		t.Fatalf("run -check -net nosuch succeeded (out: %s)", stdout.String())
	}
}

// deadlocked is a program whose synchrocell's second join pattern can never
// be filled — a lint finding, not a type error.
const deadlocked = `
box gen (<seed>) -> (a, <k>);
box useBoth (a, b, <k>) -> (done);
net deadsync connect gen .. [| {a, <k>}, {b, <k>} |] .. useBoth;
`

// TestCheckReportsAllFilesAfterError pins the multi-file contract: an
// unreadable (or broken) early file must not stop -check from reporting the
// later ones — all files are reported, then the run exits nonzero.
func TestCheckReportsAllFilesAfterError(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no_such.snet")
	good := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	err := run([]string{"-check", missing, good}, &stdout, &stderr)
	if err == nil {
		t.Fatal("want nonzero result for the unreadable file")
	}
	out := stdout.String()
	if !strings.Contains(out, "no_such.snet") {
		t.Errorf("missing file not reported:\n%s", out)
	}
	if !strings.Contains(out, "net countdown") {
		t.Errorf("later file was not checked after the early error:\n%s", out)
	}
}

func TestCheckLintWarnsWithoutFailing(t *testing.T) {
	path := writeProgram(t, deadlocked)
	var stdout, stderr strings.Builder
	if err := run([]string{"-check", "-lint", path}, &stdout, &stderr); err != nil {
		t.Fatalf("-lint (warn mode) must not fail the run: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[sync-starvation]") {
		t.Errorf("missing sync-starvation finding:\n%s", out)
	}
	if !strings.Contains(out, "{b, <k>}") {
		t.Errorf("finding does not name the starving pattern:\n%s", out)
	}
}

func TestCheckLintStrictFails(t *testing.T) {
	path := writeProgram(t, deadlocked)
	var stdout, stderr strings.Builder
	err := run([]string{"-check", "-lint=strict", path}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("-lint=strict must fail on findings:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[sync-starvation]") {
		t.Errorf("missing finding before the failure:\n%s", stdout.String())
	}
}

func TestLintImpliesCheck(t *testing.T) {
	path := writeProgram(t, countdown)
	var stdout, stderr strings.Builder
	if err := run([]string{"-lint", path}, &stdout, &stderr); err != nil {
		t.Fatalf("-lint alone should enter check mode: %v", err)
	}
	if !strings.Contains(stdout.String(), "net countdown") {
		t.Errorf("check output missing:\n%s", stdout.String())
	}
}
