package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/snet/lang"
)

// The -verify mode: the whole-plan deadlock & boundedness verifier.  For
// every net of every file it prints (or, with -json, emits machine-readable)
// the verdict — deadlock-free or not, the static memory high-water bound,
// and a counterexample trace for every deadlock-class finding.  The exit
// status is nonzero iff any file fails to parse or compile, any net is
// deadlock-positive, or (with -budget) any bound exceeds the budget.

// verifySchema versions the -verify -json output; consumers must reject
// schemas they do not know.
const verifySchema = "snet-verify/1"

// verifyOutput is the top-level -verify -json document.
type verifyOutput struct {
	Schema string       `json:"schema"`
	Files  []verifyFile `json:"files"`
	OK     bool         `json:"ok"`
}

type verifyFile struct {
	Path  string      `json:"path"`
	Error string      `json:"error,omitempty"` // parse/read failure
	Nets  []verifyNet `json:"nets,omitempty"`
}

type verifyNet struct {
	Net          string          `json:"net"`
	DeadlockFree bool            `json:"deadlockFree"`
	Bound        *analysis.Bound `json:"bound,omitempty"`
	Caps         analysis.Caps   `json:"caps"`
	Nodes        int             `json:"nodes"`
	Edges        int             `json:"edges"`
	TypeErrors   []string        `json:"typeErrors,omitempty"`
	Findings     []verifyFinding `json:"findings,omitempty"`
}

type verifyFinding struct {
	Code    string               `json:"code"`
	Path    string               `json:"path"`
	Node    string               `json:"node"`
	Variant string               `json:"variant,omitempty"`
	Msg     string               `json:"msg"`
	Pos     string               `json:"pos,omitempty"`
	Exact   bool                 `json:"exact"`
	Trace   []analysis.TraceStep `json:"trace,omitempty"`
}

// runVerify analyzes every net (or just -net) of each file under the given
// caps and reports the verdicts.
func runVerify(files []string, netName string, caps analysis.Caps, jsonOut bool, stdout io.Writer) error {
	out := verifyOutput{Schema: verifySchema, OK: true}
	bad := 0
	for _, path := range files {
		vf := verifyFile{Path: path}
		src, err := os.ReadFile(path)
		var prog *lang.Program
		if err == nil {
			prog, err = lang.Parse(string(src))
		}
		if err != nil {
			vf.Error = err.Error()
			out.Files = append(out.Files, vf)
			bad++
			continue
		}
		reg := demoRegistry()
		stubBoxes(prog, reg)
		for _, nd := range prog.Nets {
			if netName != "" && nd.Name != netName {
				continue
			}
			plan, rep, cerr := lang.AnalyzeNetWithCaps(prog, nd.Name, reg, caps)
			vn := verifyNet{Net: nd.Name, Caps: caps}
			if plan == nil {
				vn.TypeErrors = append(vn.TypeErrors, fmt.Sprint(cerr))
				vn.DeadlockFree = false
				vf.Nets = append(vf.Nets, vn)
				bad++
				continue
			}
			for _, te := range plan.TypeErrors() {
				vn.TypeErrors = append(vn.TypeErrors, te.Error())
				bad++
			}
			vn.DeadlockFree = rep.DeadlockFree()
			vn.Bound = rep.Bound
			vn.Nodes = rep.Nodes
			vn.Edges = rep.Edges
			for _, f := range rep.Findings {
				vn.Findings = append(vn.Findings, verifyFinding{
					Code:    f.Code,
					Path:    f.Path,
					Node:    f.Node,
					Variant: f.Variant.String(),
					Msg:     f.Msg,
					Pos:     f.Pos,
					Exact:   f.Exact,
					Trace:   f.Trace,
				})
				if f.Code == analysis.CodeCapacityOverflow {
					bad++
				}
			}
			if !vn.DeadlockFree {
				bad++
			}
			vf.Nets = append(vf.Nets, vn)
		}
		out.Files = append(out.Files, vf)
	}
	out.OK = bad == 0

	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		renderVerify(stdout, &out)
	}
	if bad > 0 {
		return fmt.Errorf("%d problem(s) found", bad)
	}
	return nil
}

// renderVerify is the human form of the verdicts: one headline per net,
// findings with their traces below.
func renderVerify(w io.Writer, out *verifyOutput) {
	for _, vf := range out.Files {
		if vf.Error != "" {
			fmt.Fprintf(w, "%s: %s\n", vf.Path, vf.Error)
			continue
		}
		for _, vn := range vf.Nets {
			verdict := "DEADLOCK-POSITIVE"
			if vn.DeadlockFree {
				verdict = "deadlock-free"
			}
			bound := "no finite memory bound"
			if vn.Bound != nil && vn.Bound.Finite {
				bound = fmt.Sprintf("memory bound %s", vn.Bound)
			}
			fmt.Fprintf(w, "%s: net %s: %s; %s; %d nodes, %d stream edges (buffer %d, batch %d, %d workers, %d replicas/site)\n",
				vf.Path, vn.Net, verdict, bound, vn.Nodes, vn.Edges,
				vn.Caps.StreamBuffer, vn.Caps.StreamBatch, vn.Caps.BoxWorkers, vn.Caps.SplitWidth)
			for _, te := range vn.TypeErrors {
				fmt.Fprintf(w, "%s: %s\n", vf.Path, te)
			}
			for _, f := range vn.Findings {
				fmt.Fprintf(w, "%s: snet: ", vf.Path)
				if f.Pos != "" {
					fmt.Fprintf(w, "%s: ", f.Pos)
				}
				fmt.Fprintf(w, "verify [%s] at %s: %s\n", f.Code, f.Path, f.Msg)
				for i, s := range f.Trace {
					fmt.Fprintf(w, "%s:     trace[%d]", vf.Path, i)
					if s.Pos != "" {
						fmt.Fprintf(w, " %s", s.Pos)
					}
					fmt.Fprintf(w, " %s: %s\n", s.Path, s.State)
				}
			}
		}
	}
}
