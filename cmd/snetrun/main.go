// Command snetrun parses a textual S-Net program (the paper's notation),
// type-checks it, and optionally runs it against a registry of built-in
// demonstration boxes, feeding records given on the command line.
//
// Usage:
//
//	snetrun [-net name] [-run] [-record '{<n>=5}']... file.snet
//	snetrun -list           # show the built-in demo boxes
//
// Record literals accept tags (<t>=int) and string fields (name=text).
//
// Built-in demo boxes (bind any of these names in your program):
//
//	inc   (<n>) -> (<n>)                 n+1
//	dec   (<n>) -> (<n>) | (<n>,<done>)  n-1, <done> at 0
//	double(<n>) -> (<n>)                 n*2
//	split2(<n>) -> (<n>)                 emits n twice
//	echo  () -> ()                       forwards unchanged
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/snet"
	"repro/snet/lang"
)

func demoRegistry() *lang.Registry {
	return lang.NewRegistry().
		RegisterFunc("inc", func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)+1)
		}).
		RegisterFunc("dec", func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			if n <= 0 {
				return out.Out(2, 0, 1)
			}
			return out.Out(1, n-1)
		}).
		RegisterFunc("double", func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)*2)
		}).
		RegisterFunc("split2", func(args []any, out *snet.Emitter) error {
			if err := out.Out(1, args[0].(int)); err != nil {
				return err
			}
			return out.Out(1, args[0].(int))
		}).
		RegisterFunc("echo", func(args []any, out *snet.Emitter) error {
			return out.Out(1)
		})
}

type recordFlags []string

func (r *recordFlags) String() string     { return strings.Join(*r, " ") }
func (r *recordFlags) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	var (
		netName = flag.String("net", "", "net to build (default: last net in the file)")
		run     = flag.Bool("run", false, "run the network on the given -record inputs")
		list    = flag.Bool("list", false, "list built-in demo boxes")
		records recordFlags
	)
	flag.Var(&records, "record", "input record literal, e.g. '{<n>=5, name=abc}' (repeatable)")
	flag.Parse()

	if *list {
		fmt.Println("inc dec double split2 echo")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: snetrun [-net name] [-run] [-record {...}]... file.snet")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Println("parsed:")
	fmt.Print(prog)

	name := *netName
	if name == "" {
		if len(prog.Nets) == 0 {
			fatal(fmt.Errorf("no net definitions in %s", flag.Arg(0)))
		}
		name = prog.Nets[len(prog.Nets)-1].Name
	}
	net, err := lang.Build(prog, name, demoRegistry())
	if err != nil {
		fatal(err)
	}
	in, out, diags := snet.Check(net)
	fmt.Printf("\nnet %s : %v -> %v\n", name, in, out)
	for _, d := range diags {
		fmt.Println("  ", d)
	}
	if !*run {
		return
	}

	inputs := make([]*snet.Record, 0, len(records))
	for _, lit := range records {
		r, err := parseRecord(lit)
		if err != nil {
			fatal(err)
		}
		inputs = append(inputs, r)
	}
	results, stats, err := snet.RunAll(context.Background(), net, inputs,
		snet.WithErrorHandler(func(e error) { fmt.Fprintln(os.Stderr, "runtime:", e) }))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d output records:\n", len(results))
	for _, r := range results {
		fmt.Println("  ", r)
	}
	fmt.Println("\nstatistics:")
	snap := stats.Snapshot()
	for _, k := range stats.Keys() {
		fmt.Printf("  %-40s %d\n", k, snap[k])
	}
}

// parseRecord reads a record literal: {<tag>=int, field=string, ...}.
func parseRecord(lit string) (*snet.Record, error) {
	s := strings.TrimSpace(lit)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("record literal must be braced: %q", lit)
	}
	rec := snet.NewRecord()
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return rec, nil
	}
	for _, part := range strings.Split(body, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad record item %q", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		if strings.HasPrefix(key, "<") && strings.HasSuffix(key, ">") {
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("tag %s needs an integer, got %q", key, val)
			}
			rec.SetTag(key[1:len(key)-1], n)
		} else {
			rec.SetField(key, val)
		}
	}
	return rec, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snetrun:", err)
	os.Exit(1)
}
