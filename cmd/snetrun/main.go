// Command snetrun parses a textual S-Net program (the paper's notation),
// type-checks it, and optionally runs it against a registry of built-in
// demonstration boxes, feeding records given on the command line.
//
// Usage:
//
//	snetrun [-net name] [-run] [-stream-batch B] [-record '{<n>=5}']... file.snet
//	snetrun -check [-lint[=strict]] file.snet...  # static diagnostics only
//	snetrun -verify [-json] [-budget N] file.snet...  # deadlock & boundedness verifier
//	snetrun -list           # show the built-in demo boxes
//
// -check compiles every net of the given files (snet.Compile through the
// language front end): box implementations are stubbed, so any program
// type-checks without bindings, and definite defects — unreachable parallel
// branches, unroutable record shapes, signature mismatches, missing split
// tags, reserved labels — are reported with their .snet source positions.
// The exit status is nonzero if any file has parse or type errors.
//
// -lint additionally runs the graph-level liveness analysis over every
// compiled net and prints its findings — sync starvation/deadlock, dead
// combinator arms, star divergence, unbounded split growth, marker
// hazards — as warnings with node paths and source positions.  -lint=strict
// makes findings count toward the nonzero exit status, the CI
// configuration.  -lint implies -check.
//
// -verify runs the whole-plan deadlock & boundedness verifier: for every
// net it reports whether the coordination structure is deadlock-free, the
// static memory high-water bound (records) under the default capacity
// assumptions, and a counterexample trace — the ordered chain of graph
// edges with their blocking fill states — for every deadlock-class finding.
// -budget N adds an admission check (finite bound above N records is a
// capacity-overflow finding); -json emits the snet-verify/1 document for
// machine consumption.  The exit status is nonzero iff any net fails to
// compile, is deadlock-positive, or exceeds the budget.
//
// Record literals accept tags (<t>=int) and string fields (name=text).
//
// Built-in demo boxes (bind any of these names in your program):
//
//	inc   (<n>) -> (<n>)                 n+1
//	dec   (<n>) -> (<n>) | (<n>,<done>)  n-1, <done> at 0
//	double(<n>) -> (<n>)                 n*2
//	split2(<n>) -> (<n>)                 emits n twice
//	echo  () -> ()                       forwards unchanged
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/snet"
	"repro/snet/lang"
)

func demoRegistry() *lang.Registry {
	return lang.NewRegistry().
		RegisterFunc("inc", func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)+1)
		}).
		RegisterFunc("dec", func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			if n <= 0 {
				return out.Out(2, 0, 1)
			}
			return out.Out(1, n-1)
		}).
		RegisterFunc("double", func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)*2)
		}).
		RegisterFunc("split2", func(args []any, out *snet.Emitter) error {
			if err := out.Out(1, args[0].(int)); err != nil {
				return err
			}
			return out.Out(1, args[0].(int))
		}).
		RegisterFunc("echo", func(args []any, out *snet.Emitter) error {
			return out.Out(1)
		})
}

type recordFlags []string

func (r *recordFlags) String() string     { return strings.Join(*r, " ") }
func (r *recordFlags) Set(s string) error { *r = append(*r, s); return nil }

// lintMode is the -lint flag: off by default, "-lint" warns, "-lint=strict"
// makes findings fail the run.
type lintMode int

const (
	lintOff lintMode = iota
	lintWarn
	lintStrict
)

func (m *lintMode) IsBoolFlag() bool { return true }

func (m *lintMode) String() string {
	switch *m {
	case lintWarn:
		return "true"
	case lintStrict:
		return "strict"
	}
	return "false"
}

func (m *lintMode) Set(s string) error {
	switch s {
	case "", "true", "on", "warn":
		*m = lintWarn
	case "strict":
		*m = lintStrict
	case "false", "off":
		*m = lintOff
	default:
		return fmt.Errorf("-lint accepts nothing, =strict or =off, not %q", s)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "snetrun:", err)
		os.Exit(1)
	}
}

// run is the testable command body: parse flags and the program, build the
// requested net, and optionally execute it over the -record inputs.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("snetrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netName = fs.String("net", "", "net to build (default: last net in the file)")
		doRun   = fs.Bool("run", false, "run the network on the given -record inputs")
		check   = fs.Bool("check", false, "compile-only static diagnostics for every net of the given file(s)")
		verify  = fs.Bool("verify", false, "run the deadlock & boundedness verifier over every net of the given file(s)")
		jsonOut = fs.Bool("json", false, "with -verify: emit the machine-readable "+verifySchema+" document")
		budget  = fs.Int64("budget", 0, "with -verify: memory budget in records; a finite bound above it is a capacity-overflow finding")
		list    = fs.Bool("list", false, "list built-in demo boxes")
		batch   = fs.Int("stream-batch", 0, "stream batch size B (0: runtime default)")
		records recordFlags
		lint    lintMode
	)
	fs.Var(&records, "record", "input record literal, e.g. '{<n>=5, name=abc}' (repeatable)")
	fs.Var(&lint, "lint", "with -check: run the liveness analysis and print findings (=strict: findings fail the run)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "inc dec double split2 echo")
		return nil
	}
	if *verify {
		if fs.NArg() == 0 {
			return fmt.Errorf("usage: snetrun -verify [-json] [-budget N] file.snet...")
		}
		caps := analysis.DefaultCaps()
		caps.MemoryBudget = *budget
		if *batch > 0 {
			caps.StreamBatch = *batch
		}
		return runVerify(fs.Args(), *netName, caps, *jsonOut, stdout)
	}
	if *check || lint != lintOff {
		if fs.NArg() == 0 {
			return fmt.Errorf("usage: snetrun -check [-lint[=strict]] file.snet...")
		}
		return runCheck(fs.Args(), *netName, lint, stdout)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: snetrun [-net name] [-run] [-record {...}]... file.snet")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "parsed:")
	fmt.Fprint(stdout, prog)

	name := *netName
	if name == "" {
		if len(prog.Nets) == 0 {
			return fmt.Errorf("no net definitions in %s", fs.Arg(0))
		}
		name = prog.Nets[len(prog.Nets)-1].Name
	}
	net, err := lang.Build(prog, name, demoRegistry())
	if err != nil {
		return err
	}
	in, out, diags := snet.Check(net)
	fmt.Fprintf(stdout, "\nnet %s : %v -> %v\n", name, in, out)
	for _, d := range diags {
		fmt.Fprintln(stdout, "  ", d)
	}
	if !*doRun {
		return nil
	}

	inputs := make([]*snet.Record, 0, len(records))
	for _, lit := range records {
		r, err := parseRecord(lit)
		if err != nil {
			return err
		}
		inputs = append(inputs, r)
	}
	var opts []snet.Option
	opts = append(opts, snet.WithErrorHandler(func(e error) { fmt.Fprintln(stderr, "runtime:", e) }))
	if *batch > 0 {
		opts = append(opts, snet.WithStreamBatch(*batch))
	}
	results, stats, err := snet.RunAll(context.Background(), net, inputs, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\n%d output records:\n", len(results))
	for _, r := range results {
		fmt.Fprintln(stdout, "  ", r)
	}
	fmt.Fprintln(stdout, "\nstatistics:")
	snap := stats.Snapshot()
	for _, k := range stats.Keys() {
		fmt.Fprintf(stdout, "  %-40s %d\n", k, snap[k])
	}
	return nil
}

// stubBoxes registers a no-op implementation for every box declared in the
// program (including net bodies), so -check type-checks programs whose
// boxes have no Go bindings: the compile phase only consumes signatures.
func stubBoxes(prog *lang.Program, reg *lang.Registry) {
	stub := func(args []any, out *snet.Emitter) error { return nil }
	var walk func(p *lang.Program)
	walk = func(p *lang.Program) {
		for _, bd := range p.Boxes {
			reg.RegisterFunc(bd.Name, stub)
		}
		for _, nd := range p.Nets {
			if nd.Body != nil {
				walk(nd.Body)
			}
		}
	}
	walk(prog)
}

// runCheck is the -check mode: compile every net (or just -net) of each
// file and print the static diagnostics — and, with -lint, the liveness
// analysis findings.  Every file is reported even when an earlier one has
// errors; the returned error is non-nil iff any file failed to parse or
// compile (or, under -lint=strict, had findings).
func runCheck(files []string, netName string, lint lintMode, stdout io.Writer) error {
	bad, matched := 0, 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			// Report and keep going: later files still get their findings.
			fmt.Fprintf(stdout, "%s: %v\n", path, err)
			bad++
			continue
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			fmt.Fprintf(stdout, "%s: %v\n", path, err)
			bad++
			continue
		}
		reg := demoRegistry()
		stubBoxes(prog, reg)
		checked := 0
		for _, nd := range prog.Nets {
			if netName != "" && nd.Name != netName {
				continue
			}
			checked++
			var plan *snet.Plan
			var cerr error
			var rep *analysis.Report
			if lint != lintOff {
				plan, rep, cerr = lang.AnalyzeNet(prog, nd.Name, reg)
			} else {
				plan, cerr = lang.CompileNet(prog, nd.Name, reg)
			}
			if plan == nil {
				fmt.Fprintf(stdout, "%s: net %s: %v\n", path, nd.Name, cerr)
				bad++
				continue
			}
			fmt.Fprintf(stdout, "%s: net %s : %v -> %v\n", path, nd.Name, plan.In(), plan.Out())
			for _, te := range plan.TypeErrors() {
				fmt.Fprintf(stdout, "%s: %v\n", path, te)
				bad++
			}
			for _, d := range plan.Warnings() {
				fmt.Fprintf(stdout, "%s:   %s\n", path, d)
			}
			if rep != nil {
				for _, f := range rep.Findings {
					fmt.Fprintf(stdout, "%s: %v\n", path, f)
					if lint == lintStrict {
						bad++
					}
				}
			}
		}
		matched += checked
		// A file without any net definition is a problem; with -net, a file
		// simply lacking that name is fine as long as some file has it.
		if checked == 0 && netName == "" {
			fmt.Fprintf(stdout, "%s: no net definitions\n", path)
			bad++
		}
	}
	if netName != "" && matched == 0 {
		fmt.Fprintf(stdout, "no net named %q in the given file(s)\n", netName)
		bad++
	}
	if bad > 0 {
		return fmt.Errorf("%d problem(s) found", bad)
	}
	return nil
}

// parseRecord reads a record literal: {<tag>=int, field=string, ...}.
func parseRecord(lit string) (*snet.Record, error) {
	s := strings.TrimSpace(lit)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("record literal must be braced: %q", lit)
	}
	rec := snet.NewRecord()
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return rec, nil
	}
	for _, part := range strings.Split(body, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad record item %q", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		if strings.HasPrefix(key, "<") && strings.HasSuffix(key, ">") {
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("tag %s needs an integer, got %q", key, val)
			}
			rec.SetTag(key[1:len(key)-1], n)
		} else {
			rec.SetField(key, val)
		}
	}
	return rec, nil
}
