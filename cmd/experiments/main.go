// Command experiments regenerates every experiment table of EXPERIMENTS.md:
// one table per figure and quantitative claim of the paper (see the
// experiment index in DESIGN.md).
//
// Usage:
//
//	experiments [-reps n] [-workers w] [-grain g] [-stream-batch B] [-only E3]
//	            [-smoke] [-fuse=false] [-bench-out BENCH_9.json]
//
// The workload-suite experiments (E17 wavefront, E18 divide-and-conquer,
// E19 HTTP request/response, E20 static liveness analysis, E21 record
// plane, E22 pipeline fusion, E23 deadlock & boundedness verifier)
// additionally persist machine-readable results:
// their data points are merged into the -bench-out file (schema-validated
// after writing), so successive PRs can diff the performance trajectory.
// -smoke shrinks them to CI sizes without changing the sweep structure.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		reps     = flag.Int("reps", 5, "measurement repetitions per cell")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "max with-loop workers for the scaling experiment")
		grain    = flag.Int("grain", 0, "with-loop minimum chunk size for every pool (0: per-experiment default)")
		batch    = flag.Int("stream-batch", 0, "stream batch size B for every run (0: runtime default; E13/E14 sweep B regardless)")
		only     = flag.String("only", "", "run a single experiment (e.g. E3)")
		smoke    = flag.Bool("smoke", false, "shrink the workload experiments (E17-E23) to CI-smoke sizes")
		benchOut = flag.String("bench-out", "BENCH_10.json", "merge E17-E23 machine-readable results into this file (empty: don't write)")
		fuse     = flag.Bool("fuse", true, "keep the compile-time fusion pass on (false sets SNET_FUSE=0 for every run)")
	)
	flag.Parse()
	if !*fuse {
		// Before any Compile: the runtime reads SNET_FUSE once, lazily.
		os.Setenv("SNET_FUSE", "0")
	}
	bench.Reps = *reps
	bench.Grain = *grain
	bench.StreamBatch = *batch
	bench.Smoke = *smoke

	fmt.Printf("# Experiment run — %s, GOMAXPROCS=%d, reps=%d\n\n",
		time.Now().Format("2006-01-02 15:04:05"), runtime.GOMAXPROCS(0), *reps)

	var tables []*bench.Table
	var results []bench.Result
	workload := func(f func() (*bench.Table, []bench.Result)) {
		t, rs := f()
		tables = append(tables, t)
		results = append(results, rs...)
	}
	if *only == "" {
		tables = bench.All(*workers)
		workload(bench.E17Wavefront)
		workload(bench.E18DivConq)
		workload(bench.E19HTTPSessions)
		workload(bench.E20Lint)
		workload(bench.E21RecordPlane)
		workload(bench.E22PipelineFusion)
		workload(bench.E23Verify)
	} else {
		switch strings.ToUpper(*only) {
		case "E1":
			tables = []*bench.Table{bench.E1Fig1()}
		case "E2":
			tables = []*bench.Table{bench.E2Fig2()}
		case "E3":
			tables = []*bench.Table{bench.E3Fig3()}
		case "E4":
			tables = []*bench.Table{bench.E4Sequential()}
		case "E5":
			tables = []*bench.Table{bench.E5WithLoop(*workers)}
		case "E6":
			tables = []*bench.Table{bench.E6BigBoards()}
		case "E8":
			tables = []*bench.Table{bench.E8DetVsNondet()}
		case "E9":
			tables = []*bench.Table{bench.E9RuntimeMicro()}
		case "E10":
			tables = []*bench.Table{bench.E10Hybrid()}
		case "E13":
			tables = []*bench.Table{bench.E13DeepPipeline()}
		case "E14":
			tables = []*bench.Table{bench.E14Fig1Batch()}
		case "E15":
			tables = []*bench.Table{bench.E15SessionMux()}
		case "E16":
			tables = []*bench.Table{bench.E16Routing()}
		case "E17":
			workload(bench.E17Wavefront)
		case "E18":
			workload(bench.E18DivConq)
		case "E19":
			workload(bench.E19HTTPSessions)
		case "E20":
			workload(bench.E20Lint)
		case "E21":
			workload(bench.E21RecordPlane)
		case "E22":
			workload(bench.E22PipelineFusion)
		case "E23":
			workload(bench.E23Verify)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (E7 is covered by unit tests)\n", *only)
			os.Exit(2)
		}
	}
	for _, t := range tables {
		fmt.Print(t.Markdown())
	}
	if len(results) > 0 && *benchOut != "" {
		if err := bench.MergeBenchFile(*benchOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		if _, err := bench.LoadBenchFile(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed schema validation: %v\n", *benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d data point(s) to %s (schema v%d, validated)\n",
			len(results), *benchOut, bench.BenchSchemaVersion)
	}
}
