// Command experiments regenerates every experiment table of EXPERIMENTS.md:
// one table per figure and quantitative claim of the paper (see the
// experiment index in DESIGN.md).
//
// Usage:
//
//	experiments [-reps n] [-workers w] [-grain g] [-stream-batch B] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		reps    = flag.Int("reps", 5, "measurement repetitions per cell")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "max with-loop workers for the scaling experiment")
		grain   = flag.Int("grain", 0, "with-loop minimum chunk size for every pool (0: per-experiment default)")
		batch   = flag.Int("stream-batch", 0, "stream batch size B for every run (0: runtime default; E13/E14 sweep B regardless)")
		only    = flag.String("only", "", "run a single experiment (e.g. E3)")
	)
	flag.Parse()
	bench.Reps = *reps
	bench.Grain = *grain
	bench.StreamBatch = *batch

	fmt.Printf("# Experiment run — %s, GOMAXPROCS=%d, reps=%d\n\n",
		time.Now().Format("2006-01-02 15:04:05"), runtime.GOMAXPROCS(0), *reps)

	var tables []*bench.Table
	if *only == "" {
		tables = bench.All(*workers)
	} else {
		switch strings.ToUpper(*only) {
		case "E1":
			tables = []*bench.Table{bench.E1Fig1()}
		case "E2":
			tables = []*bench.Table{bench.E2Fig2()}
		case "E3":
			tables = []*bench.Table{bench.E3Fig3()}
		case "E4":
			tables = []*bench.Table{bench.E4Sequential()}
		case "E5":
			tables = []*bench.Table{bench.E5WithLoop(*workers)}
		case "E6":
			tables = []*bench.Table{bench.E6BigBoards()}
		case "E8":
			tables = []*bench.Table{bench.E8DetVsNondet()}
		case "E9":
			tables = []*bench.Table{bench.E9RuntimeMicro()}
		case "E10":
			tables = []*bench.Table{bench.E10Hybrid()}
		case "E13":
			tables = []*bench.Table{bench.E13DeepPipeline()}
		case "E14":
			tables = []*bench.Table{bench.E14Fig1Batch()}
		case "E15":
			tables = []*bench.Table{bench.E15SessionMux()}
		case "E16":
			tables = []*bench.Table{bench.E16Routing()}
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (E7 is covered by unit tests)\n", *only)
			os.Exit(2)
		}
	}
	for _, t := range tables {
		fmt.Print(t.Markdown())
	}
}
