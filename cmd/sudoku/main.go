// Command sudoku solves sudoku puzzles with the paper's solvers: the
// sequential §3 algorithm or the S-Net networks of Figures 1–3.
//
// Usage:
//
//	sudoku -mode seq|fig1|fig2|fig3|hybrid [-puzzle easy|medium|hard]
//	       [-board 81chars] [-size n -holes h -seed s] [-workers w]
//	       [-throttle m] [-level L] [-det] [-stats]
//
// Examples:
//
//	sudoku -mode fig2 -puzzle hard -stats
//	sudoku -mode fig3 -size 4 -holes 80 -throttle 4 -level 200
//	sudoku -mode seq -board 53..7....6..195....98....6.8...6...34..8.3..17...2...6.6....28....419..5....8..79
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/sac"
	"repro/snet"
	"repro/sudoku"
)

func main() {
	var (
		mode     = flag.String("mode", "seq", "solver: seq, fig1, fig2, fig3 or hybrid (interpreted SaC boxes)")
		puzzleNm = flag.String("puzzle", "easy", "fixed 9x9 puzzle: easy, medium or hard")
		boardStr = flag.String("board", "", "explicit 81-character 9x9 board ('.' or '0' for empty)")
		size     = flag.Int("size", 0, "generate an n²×n² puzzle with this sub-board size instead")
		holes    = flag.Int("holes", 40, "holes to dig when generating")
		seed     = flag.Int64("seed", 1, "generation seed")
		workers  = flag.Int("workers", 1, "data-parallel with-loop workers ('SaC threads')")
		throttle = flag.Int("throttle", 4, "fig3: parallel-width throttle m in {<k>}->{<k>=<k>%m}")
		level    = flag.Int("level", 40, "fig3: serial-replication exit level L")
		det      = flag.Bool("det", false, "use deterministic combinator variants (|, *, !)")
		stats    = flag.Bool("stats", false, "print network statistics")
		quiet    = flag.Bool("quiet", false, "suppress board output")
	)
	flag.Parse()

	pool := sac.NewPool(*workers)
	puzzle, err := selectPuzzle(pool, *puzzleNm, *boardStr, *size, *holes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sudoku:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Println("puzzle:")
		fmt.Println(puzzle)
	}

	start := time.Now()
	var (
		solution *sudoku.Board
		st       *snet.Stats
	)
	switch *mode {
	case "seq":
		b, ok := sudoku.SolveBoard(pool, puzzle)
		if ok {
			solution = b
		}
	case "fig1", "fig2", "fig3":
		cfg := sudoku.NetConfig{Pool: pool, Throttle: *throttle, ExitLevel: *level, Det: *det}
		var net snet.Node
		switch *mode {
		case "fig1":
			net = sudoku.Fig1Net(cfg)
		case "fig2":
			net = sudoku.Fig2Net(cfg)
		default:
			net = sudoku.Fig3Net(cfg)
		}
		solution, st, err = sudoku.SolveWithNet(context.Background(), net, puzzle)
	case "hybrid":
		boxes := sudoku.NewSacBoxes(pool)
		solution, st, err = boxes.SolveHybrid(context.Background(), puzzle)
	default:
		fmt.Fprintf(os.Stderr, "sudoku: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sudoku:", err)
		os.Exit(1)
	}
	if solution == nil {
		fmt.Printf("no solution (%v)\n", elapsed)
		os.Exit(1)
	}
	if !solution.IsSolved() || !solution.Extends(puzzle) {
		fmt.Fprintln(os.Stderr, "sudoku: internal error: invalid solution")
		os.Exit(1)
	}
	if !*quiet {
		fmt.Println("solution:")
		fmt.Println(solution)
	}
	fmt.Printf("solved in %v (mode %s, %d workers)\n", elapsed, *mode, *workers)
	if *stats && st != nil {
		fmt.Println("network statistics:")
		snap := st.Snapshot()
		for _, k := range st.Keys() {
			fmt.Printf("  %-45s %d\n", k, snap[k])
		}
		if w := st.Max("split.level_split.width"); w > 0 {
			fmt.Printf("  %-45s %d\n", "split.level_split.width.max", w)
		}
		if d := st.Max("star.solve_loop.depth"); d > 0 {
			fmt.Printf("  %-45s %d\n", "star.solve_loop.depth.max", d)
		}
	}
}

func selectPuzzle(pool *sac.Pool, name, board string, size, holes int, seed int64) (*sudoku.Board, error) {
	switch {
	case board != "":
		return sudoku.Parse(board)
	case size > 0:
		unique := size <= 3 // uniqueness checking is practical up to 9×9
		p, _ := sudoku.Generate(pool, size, seed, holes, unique)
		return p, nil
	default:
		p, ok := sudoku.Fixed9x9()[name]
		if !ok {
			return nil, fmt.Errorf("unknown puzzle %q (want easy, medium or hard)", name)
		}
		return p, nil
	}
}
