package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// starvingNet is a program whose synchrocell has one pattern ({ghost}) that
// no upstream variant can ever satisfy — a registration-time lint finding,
// not a type error, so the daemon must register it and log the hazard.
const starvingNet = `
box inc (<n>) -> (<n>);
box echo () -> ();
net halfsync connect inc .. [| {<n>}, {ghost} |] .. echo;
`

// captureLint swaps the registration-time lint writer for a buffer.
func captureLint(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := lintOut
	lintOut = &buf
	t.Cleanup(func() { lintOut = old })
	return &buf
}

// TestBuiltinNetworksLintClean pins that every network the daemon ships —
// the three sudoku figures and the two workload nets — registers without a
// single liveness finding.
func TestBuiltinNetworksLintClean(t *testing.T) {
	buf := captureLint(t)
	svc, err := newService(config{workers: 1, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	if buf.Len() != 0 {
		t.Errorf("built-in networks produced lint findings:\n%s", buf.String())
	}
}

// TestLangNetworkLintLoggedAtRegistration registers a textual net with a
// starving synchrocell and checks the finding lands in the daemon log —
// with its code, node path, and .snet source position — while the network
// still registers (findings warn, they do not refuse startup).
func TestLangNetworkLintLoggedAtRegistration(t *testing.T) {
	buf := captureLint(t)
	path := filepath.Join(t.TempDir(), "halfsync.snet")
	if err := os.WriteFile(path, []byte(starvingNet), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := newService(config{workers: 1, throttle: 4, level: 40, snetFile: path})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	if _, err := svc.Network("halfsync"); err != nil {
		t.Fatalf("net with findings must still register: %v", err)
	}
	log := buf.String()
	if !strings.Contains(log, "snetd: net halfsync:") {
		t.Fatalf("no lint log line for halfsync, got:\n%s", log)
	}
	if !strings.Contains(log, "sync-starvation") {
		t.Errorf("log misses the sync-starvation code:\n%s", log)
	}
	// The finding must carry the synchrocell's source position (line 4 of
	// the program, the "[|" site) so the log points back into the file.
	if !strings.Contains(log, "4:") {
		t.Errorf("log misses the .snet source position:\n%s", log)
	}
}
