package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// starvingNet is a program whose synchrocell has one pattern ({ghost}) that
// no upstream variant can ever satisfy — a registration-time lint finding,
// not a type error, so the daemon must register it and log the hazard.
const starvingNet = `
box inc (<n>) -> (<n>);
box echo () -> ();
net halfsync connect inc .. [| {<n>}, {ghost} |] .. echo;
`

// captureLint swaps the registration-time lint writer for a buffer.
func captureLint(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := lintOut
	lintOut = &buf
	t.Cleanup(func() { lintOut = old })
	return &buf
}

// TestBuiltinNetworksLintClean pins that every network the daemon ships —
// the three sudoku figures and the two workload nets — registers without a
// single liveness finding: the log carries one verified-deadlock-free
// verdict line (with its finite memory bound) per network and nothing else.
func TestBuiltinNetworksLintClean(t *testing.T) {
	buf := captureLint(t)
	svc, err := newService(config{workers: 1, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	verdicts := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		if !strings.Contains(line, "verified deadlock-free, static memory bound") {
			t.Errorf("unexpected lint output: %s", line)
		}
		verdicts++
	}
	if verdicts != 5 {
		t.Errorf("want 5 verdict lines (fig1-3, webpipe, wavefront), got %d:\n%s", verdicts, buf.String())
	}
}

// TestLangNetworkDeadlockRefused pins the admission side of the verifier:
// a textual net with a starving synchrocell is deadlock-positive, so the
// daemon refuses to register it by default, pointing at -allow-deadlock.
func TestLangNetworkDeadlockRefused(t *testing.T) {
	captureLint(t)
	path := filepath.Join(t.TempDir(), "halfsync.snet")
	if err := os.WriteFile(path, []byte(starvingNet), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := newService(config{workers: 1, throttle: 4, level: 40, snetFile: path})
	if err == nil {
		t.Fatal("deadlock-positive net must refuse registration by default")
	}
	for _, want := range []string{"deadlock-positive", "-allow-deadlock"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("refusal error misses %q: %v", want, err)
		}
	}
}

// TestLangNetworkLintLoggedAtRegistration registers a textual net with a
// starving synchrocell under -allow-deadlock and checks the finding lands
// in the daemon log — with its code, node path, .snet source position, and
// the counterexample trace — while the network still registers.
func TestLangNetworkLintLoggedAtRegistration(t *testing.T) {
	buf := captureLint(t)
	path := filepath.Join(t.TempDir(), "halfsync.snet")
	if err := os.WriteFile(path, []byte(starvingNet), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := newService(config{workers: 1, throttle: 4, level: 40, snetFile: path, allowDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	if _, err := svc.Network("halfsync"); err != nil {
		t.Fatalf("net with findings must still register under -allow-deadlock: %v", err)
	}
	log := buf.String()
	if !strings.Contains(log, "snetd: net halfsync:") {
		t.Fatalf("no lint log line for halfsync, got:\n%s", log)
	}
	if !strings.Contains(log, "sync-starvation") {
		t.Errorf("log misses the sync-starvation code:\n%s", log)
	}
	if !strings.Contains(log, "DEADLOCK-POSITIVE") {
		t.Errorf("log misses the verdict line:\n%s", log)
	}
	if !strings.Contains(log, "trace[0]") {
		t.Errorf("log misses the counterexample trace:\n%s", log)
	}
	// The finding must carry the synchrocell's source position (line 4 of
	// the program, the "[|" site) so the log points back into the file.
	if !strings.Contains(log, "4:") {
		t.Errorf("log misses the .snet source position:\n%s", log)
	}
}
