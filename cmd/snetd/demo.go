package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/snet/service"
	"repro/sudoku"
)

// runDemo is the acceptance scenario for the service: it binds the service
// to a loopback listener and hammers it with n concurrent HTTP clients,
// each opening its own session, streaming a sudoku puzzle in, draining the
// solution and releasing the session.  Every solution is verified against
// its puzzle; the run fails if any client errs, any board is wrong, or the
// /stats counters stay zero.
func runDemo(svc *service.Service, n int, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close(); svc.Shutdown() }()
	base := "http://" + ln.Addr().String()

	fmt.Fprintf(out, "snetd demo: %d concurrent sessions against %s\n", n, base)
	start := time.Now()
	latencies := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t0 := time.Now()
			errs[c] = demoClient(base, c)
			latencies[c] = time.Since(t0)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	failed := 0
	for c, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(out, "  client %3d: FAIL %v\n", c, err)
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Fprintf(out, "  %d/%d sessions solved their puzzle in %v\n", n-failed, n, wall.Round(time.Millisecond))
	fmt.Fprintf(out, "  session latency min/median/max: %v / %v / %v\n",
		latencies[0].Round(time.Millisecond),
		latencies[n/2].Round(time.Millisecond),
		latencies[n-1].Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("demo: %d of %d sessions failed", failed, n)
	}

	stats, err := fetchStats(base)
	if err != nil {
		return err
	}
	var opened, recIn, recOut int64
	for k, v := range stats {
		if strings.HasSuffix(k, ".sessions.opened") {
			opened += v
		}
		if strings.HasSuffix(k, ".records.in") {
			recIn += v
		}
		if strings.HasSuffix(k, ".records.out") {
			recOut += v
		}
	}
	fmt.Fprintf(out, "  /stats: sessions.opened=%d records.in=%d records.out=%d\n", opened, recIn, recOut)
	for _, k := range []string{"net.fig1.latency.session_ns", "net.fig2.latency.session_ns"} {
		if v, ok := stats[k]; ok && v > 0 {
			fmt.Fprintf(out, "  /stats: %s=%d\n", k, v)
		}
	}
	if opened < int64(n) || recIn < int64(n) || recOut < int64(n) {
		return fmt.Errorf("demo: /stats counters too low: opened=%d in=%d out=%d want >= %d",
			opened, recIn, recOut, n)
	}
	fmt.Fprintln(out, "  OK")
	return nil
}

// demoPuzzles cycles the fixed 9×9 workload set.
var demoPuzzles = []string{"easy", "medium", "hard"}

// demoClient drives one full session lifecycle over the wire.
func demoClient(base string, c int) error {
	nets := []string{"fig1", "fig2", "fig3"}
	netName := nets[c%len(nets)]
	puzzleName := demoPuzzles[(c/len(nets))%len(demoPuzzles)]
	puzzle := sudoku.Fixed9x9()[puzzleName]

	var opened struct {
		Session string `json:"session"`
	}
	if err := postJSON(base+"/api/sessions", map[string]string{"net": netName}, &opened); err != nil {
		return fmt.Errorf("open %s: %w", netName, err)
	}
	url := base + "/api/sessions/" + opened.Session
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	feed := map[string]any{
		"records": []service.RecordJSON{{Fields: map[string]string{"board": boardString(puzzle)}}},
		"close":   true,
	}
	if err := postJSON(url+"/records", feed, nil); err != nil {
		return fmt.Errorf("feed: %w", err)
	}

	// Drain in batches until a solution appears: fig1/fig2 emit completed
	// boards only, but fig3's terminal solve box also passes through the
	// stuck boards of dead-end candidates — first-solution-wins, like the
	// RunUntil harness of the batch experiments.
	for {
		var res struct {
			Records []service.RecordJSON `json:"records"`
			Done    bool                 `json:"done"`
		}
		if err := getJSON(url+"/results?max=16&wait=60s", &res); err != nil {
			return fmt.Errorf("results: %w", err)
		}
		for _, rec := range res.Records {
			solved, err := sudoku.Parse(rec.Fields["board"])
			if err != nil {
				return fmt.Errorf("%s/%s: bad board in response: %w", netName, puzzleName, err)
			}
			if solved.IsSolved() {
				if !solved.Extends(puzzle) {
					return fmt.Errorf("%s/%s: solution does not extend the puzzle:\n%v",
						netName, puzzleName, solved)
				}
				return nil
			}
		}
		if res.Done {
			return fmt.Errorf("%s/%s: network drained without a solution", netName, puzzleName)
		}
		if len(res.Records) == 0 {
			return fmt.Errorf("%s/%s: no records within the wait window", netName, puzzleName)
		}
	}
}

func postJSON(url string, body, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return err
	}
	return decodeJSON(resp, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeJSON(resp, out)
}

func decodeJSON(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fetchStats(base string) (map[string]int64, error) {
	var stats map[string]int64
	if err := getJSON(base+"/api/stats", &stats); err != nil {
		return nil, err
	}
	return stats, nil
}
