package main

import (
	"net/http/httptest"
	"os"
	"strconv"
	"testing"

	"repro/internal/workloads"
	"repro/snet/service"
)

// TestWorkloadNetsOverHTTP drives the two wire-capable workload networks
// end-to-end through the HTTP surface: webpipe requests against the
// reference, and the 64×64 wavefront grid unfolded from a single {start}
// record.
func TestWorkloadNetsOverHTTP(t *testing.T) {
	svc, err := newService(config{workers: 1, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	t.Run("webpipe", func(t *testing.T) {
		for i := 0; i < 6; i++ {
			url := workloads.WebPipeURL(i)
			var out struct {
				Records []service.RecordJSON `json:"records"`
				Done    bool                 `json:"done"`
			}
			req := map[string]any{
				"net": "webpipe",
				"records": []service.RecordJSON{{
					Tags:   map[string]int{"id": i},
					Fields: map[string]string{"url": url},
				}},
			}
			if err := postJSON(srv.URL+"/api/run", req, &out); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if !out.Done || len(out.Records) != 1 {
				t.Fatalf("request %d: done=%v records=%d", i, out.Done, len(out.Records))
			}
			wantResp, wantStatus := workloads.WebPipeReference(url)
			rec := out.Records[0]
			if rec.Fields["resp"] != wantResp || rec.Tags["status"] != wantStatus {
				t.Fatalf("request %d (%s): got %+v, want resp=%q status=%d",
					i, url, rec, wantResp, wantStatus)
			}
		}
	})

	t.Run("wavefront", func(t *testing.T) {
		if os.Getenv("CI") == "" && testing.Short() {
			t.Skip("short mode")
		}
		var out struct {
			Records []service.RecordJSON `json:"records"`
			Done    bool                 `json:"done"`
		}
		req := map[string]any{
			"net":     "wavefront",
			"records": []service.RecordJSON{{Fields: map[string]string{"start": "1"}}},
			"wait":    "60s",
		}
		if err := postJSON(srv.URL+"/api/run", req, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Done || len(out.Records) != 1 {
			t.Fatalf("done=%v records=%d", out.Done, len(out.Records))
		}
		want := workloads.WavefrontReference(64, 61)
		if got := out.Records[0].Fields["result"]; got != strconv.Itoa(want) {
			t.Fatalf("result = %q, want %d", got, want)
		}
	})
}
