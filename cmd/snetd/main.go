// Command snetd serves S-Net networks to concurrent clients over
// HTTP/JSON — the paper's batch case study deployed as a long-running
// service.  It registers the three sudoku solver networks of Figures 1–3
// (records carry 81-character boards) and, optionally, every net defined in
// a textual .snet program bound against the demo box registry.
//
// Usage:
//
//	snetd [-addr :8080] [-workers w] [-grain g] [-box-workers W]
//	      [-buffer n] [-stream-batch B] [-max-sessions n]
//	      [-session-mode isolated|shared] [-idle-timeout d]
//	      [-drain-timeout d] [-throttle m] [-level L]
//	      [-det] [-snet file.snet]
//	snetd -demo 50       # in-process load demo: 50 concurrent sessions
//
// Session modes: "isolated" (default) starts one network instance per
// session; "shared" multiplexes every session of a network over one warm
// instance via indexed replication over a reserved session tag, so opening
// a session is a map insert (see snet/service and DESIGN.md §8).
//
// On SIGTERM/SIGINT snetd shuts down gracefully: new session opens are
// refused immediately, live sessions get -drain-timeout to finish, then
// everything left is cancelled.
//
// Wire protocol (see snet/service):
//
//	POST /api/sessions                  {"net":"fig1"}
//	POST /api/sessions/{id}/records     {"records":[{"fields":{"board":"..81 chars.."}}],"close":true}
//	GET  /api/sessions/{id}/results     ?wait=10s
//	DELETE /api/sessions/{id}
//	POST /api/run                       one-shot open/feed/drain/release
//	GET  /api/networks | /api/stats | /api/healthz
//
// Example:
//
//	snetd &
//	curl -s localhost:8080/api/run -d '{"net":"fig2","wait":"10s","records":[
//	  {"fields":{"board":"53..7....6..195....98....6.8...6...34..8.3..17...2...6.6....28....419..5....8..79"}}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/sac"
	"repro/snet/service"
)

// config collects the deployment knobs shared by serve and demo mode.
type config struct {
	workers       int                 // with-loop pool width inside the boxes
	grain         int                 // with-loop minimum chunk size (0: sched default)
	boxWorkers    int                 // concurrent invocations per box node (0: GOMAXPROCS)
	buffer        int                 // stream buffer capacity (frames) per network instance
	streamBatch   int                 // stream batch size B (0: runtime default)
	maxSessions   int                 // per-network concurrent session cap
	sessionMode   service.SessionMode // isolated: instance per session; shared: warm engine
	idleTimeout   time.Duration       // abandoned-session reaping threshold
	drainTimeout  time.Duration       // graceful-shutdown session drain deadline
	throttle      int                 // fig3 parallel-width throttle m
	level         int                 // fig3 serial-replication exit level L
	det           bool
	fuse          bool // compile-time pipeline fusion (default on)
	allowDeadlock bool // serve .snet nets the verifier flags as deadlock-positive
	snetFile      string
}

// pool builds the with-loop pool from the worker and grain flags
// (grain < 1 selects the sched default).
func (cfg config) pool() *sac.Pool {
	return sac.NewPoolWithGrain(cfg.workers, cfg.grain)
}

// newService builds the service with the built-in sudoku networks and any
// textual networks from cfg.snetFile.
func newService(cfg config) (*service.Service, error) {
	svc := service.New()
	opts := service.Options{
		BufferSize:  cfg.buffer,
		StreamBatch: cfg.streamBatch,
		BoxWorkers:  cfg.boxWorkers,
		MaxSessions: cfg.maxSessions,
		SessionMode: cfg.sessionMode,
		IdleTimeout: cfg.idleTimeout,
		Pool:        cfg.pool(),
		NoFusion:    !cfg.fuse,
	}
	registerSudokuNets(svc, opts, cfg)
	registerWorkloadNets(svc, opts)
	if cfg.snetFile != "" {
		if err := registerLangNets(svc, opts, cfg.snetFile, cfg.allowDeadlock); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

// serve binds the service to addr and runs until a signal arrives on stop,
// then shuts down gracefully: Opens are refused at once, live sessions get
// the drain deadline to finish over the still-open HTTP surface, and
// whatever remains is cancelled.  If ready is non-nil it receives the bound
// address (the test hook for -addr :0).
func serve(svc *service.Service, addr string, stop <-chan os.Signal,
	drain time.Duration, ready chan<- string, out io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(out, "snetd: serving %d networks on %s\n", len(svc.Networks()), ln.Addr())
		for _, n := range svc.Networks() {
			fmt.Fprintf(out, "  %-12s [%s] %s\n", n.Name(), n.Options().SessionMode, n.Description())
		}
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-errc:
		svc.Shutdown()
		return err
	case sig := <-stop:
		fmt.Fprintf(out, "snetd: %v: refusing new sessions, draining (deadline %v)\n", sig, drain)
	}
	svc.Quiesce() // new opens fail with 503 while live sessions keep their HTTP surface
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	drained := svc.DrainSessions(ctx)
	cancel()
	if drained {
		fmt.Fprintln(out, "snetd: all sessions drained")
	} else {
		fmt.Fprintf(out, "snetd: drain deadline passed with %d live sessions; cancelling\n",
			svc.SessionCount())
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = srv.Shutdown(shutCtx) // stop the HTTP surface
	svc.Shutdown()            // cancel stragglers, wind down instances and warm engines
	fmt.Fprintln(out, "snetd: shut down")
	return nil
}

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		demo = flag.Int("demo", 0, "run an in-process demo with this many concurrent sessions, then exit")
		mode = flag.String("session-mode", "isolated", "session mode: isolated (instance per session) or shared (one warm engine per network)")
		cfg  config
	)
	flag.IntVar(&cfg.workers, "workers", 1, "data-parallel with-loop workers per box ('SaC threads')")
	flag.IntVar(&cfg.grain, "grain", 0, "with-loop minimum chunk size per worker (0: sched default)")
	flag.IntVar(&cfg.boxWorkers, "box-workers", 0, "concurrent invocations per box node, order-preserving (0: GOMAXPROCS, 1: sequential)")
	flag.IntVar(&cfg.buffer, "buffer", 32, "stream buffer capacity (frames) per network instance")
	flag.IntVar(&cfg.streamBatch, "stream-batch", 0, "records coalesced per stream synchronization, adaptive flush (0: runtime default, 1: unbatched)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 0, "concurrent sessions per network (0: default 1024, <0: unlimited)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 0, "release sessions idle this long (0: default 10m, <0: never)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown: how long live sessions get to finish after SIGTERM")
	flag.IntVar(&cfg.throttle, "throttle", 4, "fig3: parallel-width throttle m in {<k>}->{<k>=<k>%m}")
	flag.IntVar(&cfg.level, "level", 40, "fig3: serial-replication exit level L")
	flag.BoolVar(&cfg.det, "det", false, "use deterministic combinator variants (|, *, !)")
	flag.BoolVar(&cfg.fuse, "fuse", true, "fuse chains of lightweight stages into single-goroutine segments at compile time")
	flag.BoolVar(&cfg.allowDeadlock, "allow-deadlock", false, "serve -snet nets the static verifier flags as deadlock-positive (refused by default)")
	flag.StringVar(&cfg.snetFile, "snet", "", "also serve every net of this textual S-Net program (demo boxes)")
	flag.Parse()

	var err error
	if cfg.sessionMode, err = service.ParseSessionMode(*mode); err != nil {
		fatal(err)
	}
	svc, err := newService(cfg)
	if err != nil {
		fatal(err)
	}
	if *demo > 0 {
		if err := runDemo(svc, *demo, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(svc, *addr, stop, cfg.drainTimeout, nil, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snetd:", err)
	os.Exit(1)
}
