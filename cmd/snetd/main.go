// Command snetd serves S-Net networks to concurrent clients over
// HTTP/JSON — the paper's batch case study deployed as a long-running
// service.  It registers the three sudoku solver networks of Figures 1–3
// (records carry 81-character boards) and, optionally, every net defined in
// a textual .snet program bound against the demo box registry.
//
// Usage:
//
//	snetd [-addr :8080] [-workers w] [-grain g] [-box-workers W]
//	      [-buffer n] [-stream-batch B] [-max-sessions n]
//	      [-idle-timeout d] [-throttle m] [-level L]
//	      [-det] [-snet file.snet]
//	snetd -demo 50       # in-process load demo: 50 concurrent sessions
//
// Wire protocol (see snet/service):
//
//	POST /api/sessions                  {"net":"fig1"}
//	POST /api/sessions/{id}/records     {"records":[{"fields":{"board":"..81 chars.."}}],"close":true}
//	GET  /api/sessions/{id}/results     ?wait=10s
//	DELETE /api/sessions/{id}
//	POST /api/run                       one-shot open/feed/drain/release
//	GET  /api/networks | /api/stats | /api/healthz
//
// Example:
//
//	snetd &
//	curl -s localhost:8080/api/run -d '{"net":"fig2","wait":"10s","records":[
//	  {"fields":{"board":"53..7....6..195....98....6.8...6...34..8.3..17...2...6.6....28....419..5....8..79"}}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/sac"
	"repro/snet/service"
)

// config collects the deployment knobs shared by serve and demo mode.
type config struct {
	workers     int           // with-loop pool width inside the boxes
	grain       int           // with-loop minimum chunk size (0: sched default)
	boxWorkers  int           // concurrent invocations per box node (0: GOMAXPROCS)
	buffer      int           // stream buffer capacity (frames) per network instance
	streamBatch int           // stream batch size B (0: runtime default)
	maxSessions int           // per-network concurrent session cap
	idleTimeout time.Duration // abandoned-session reaping threshold
	throttle    int           // fig3 parallel-width throttle m
	level       int           // fig3 serial-replication exit level L
	det         bool
	snetFile    string
}

// pool builds the with-loop pool from the worker and grain flags
// (grain < 1 selects the sched default).
func (cfg config) pool() *sac.Pool {
	return sac.NewPoolWithGrain(cfg.workers, cfg.grain)
}

// newService builds the service with the built-in sudoku networks and any
// textual networks from cfg.snetFile.
func newService(cfg config) (*service.Service, error) {
	svc := service.New()
	opts := service.Options{
		BufferSize:  cfg.buffer,
		StreamBatch: cfg.streamBatch,
		BoxWorkers:  cfg.boxWorkers,
		MaxSessions: cfg.maxSessions,
		IdleTimeout: cfg.idleTimeout,
		Pool:        cfg.pool(),
	}
	registerSudokuNets(svc, opts, cfg)
	if cfg.snetFile != "" {
		if err := registerLangNets(svc, opts, cfg.snetFile); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		demo = flag.Int("demo", 0, "run an in-process demo with this many concurrent sessions, then exit")
		cfg  config
	)
	flag.IntVar(&cfg.workers, "workers", 1, "data-parallel with-loop workers per box ('SaC threads')")
	flag.IntVar(&cfg.grain, "grain", 0, "with-loop minimum chunk size per worker (0: sched default)")
	flag.IntVar(&cfg.boxWorkers, "box-workers", 0, "concurrent invocations per box node, order-preserving (0: GOMAXPROCS, 1: sequential)")
	flag.IntVar(&cfg.buffer, "buffer", 32, "stream buffer capacity (frames) per network instance")
	flag.IntVar(&cfg.streamBatch, "stream-batch", 0, "records coalesced per stream synchronization, adaptive flush (0: runtime default, 1: unbatched)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 0, "concurrent sessions per network (0: default 1024, <0: unlimited)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 0, "release sessions idle this long (0: default 10m, <0: never)")
	flag.IntVar(&cfg.throttle, "throttle", 4, "fig3: parallel-width throttle m in {<k>}->{<k>=<k>%m}")
	flag.IntVar(&cfg.level, "level", 40, "fig3: serial-replication exit level L")
	flag.BoolVar(&cfg.det, "det", false, "use deterministic combinator variants (|, *, !)")
	flag.StringVar(&cfg.snetFile, "snet", "", "also serve every net of this textual S-Net program (demo boxes)")
	flag.Parse()

	svc, err := newService(cfg)
	if err != nil {
		fatal(err)
	}
	if *demo > 0 {
		if err := runDemo(svc, *demo, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		fmt.Printf("snetd: serving %d networks on %s\n", len(svc.Networks()), *addr)
		for _, n := range svc.Networks() {
			fmt.Printf("  %-12s %s\n", n.Name(), n.Description())
		}
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("snetd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx) // stop accepting requests
	svc.Shutdown()        // cancel live sessions, wind down network instances
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snetd:", err)
	os.Exit(1)
}
