package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/workloads"
	"repro/snet"
	"repro/snet/lang"
	"repro/snet/service"
	"repro/sudoku"
)

// lintOut receives the registration-time static-analysis findings.  The
// daemon keeps serving with findings present — they are coordination
// hazards (sync starvation, dead arms, unbounded replication), not the
// definite type errors that refuse startup — but they belong in the log
// before the first session opens, not in a debugging session afterwards.
var lintOut io.Writer = os.Stderr

// lintNetwork compiles one network blueprint and logs its verifier verdict
// and every liveness finding.  Compile errors are ignored here: the
// Go-built networks are trusted to type-check (their tests compile them),
// and the lang path reports compile errors through its own refuse-startup
// check.
func lintNetwork(name string, node snet.Node) {
	plan, _ := snet.Compile(node)
	if plan == nil {
		return
	}
	logVerdict(name, analysis.Analyze(plan))
}

// logVerdict logs the deadlock & boundedness verdict, then the findings.
func logVerdict(name string, rep *analysis.Report) {
	if rep == nil {
		return
	}
	if rep.DeadlockFree() {
		fmt.Fprintf(lintOut, "snetd: net %s: verified deadlock-free, static memory bound %s\n",
			name, rep.Bound)
	} else {
		fmt.Fprintf(lintOut, "snetd: net %s: DEADLOCK-POSITIVE\n", name)
	}
	logFindings(name, rep)
}

func logFindings(name string, rep *analysis.Report) {
	if rep == nil {
		return
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(lintOut, "snetd: net %s: %v\n", name, f)
	}
}

// boardCodec is the wire codec of the sudoku networks: the "board" field
// travels as the conventional 81-character single-line form ('.' or '0'
// for empty cells); the "opts" field (the paper's bool[N,N,N] option cube)
// is runtime-internal and elided from responses.
type boardCodec struct{}

func (boardCodec) Decode(w service.RecordJSON) (*snet.Record, error) {
	r := snet.AcquireRecord()
	for k, v := range w.Tags {
		r.SetTag(k, v)
	}
	for k, v := range w.Fields {
		if k == "board" {
			b, err := sudoku.Parse(v)
			if err != nil {
				snet.ReleaseRecord(r)
				return nil, err
			}
			r.SetField("board", b)
			continue
		}
		r.SetField(k, v)
	}
	return r, nil
}

func (boardCodec) Encode(r *snet.Record) service.RecordJSON {
	c := r.Copy()
	c.DeleteField("opts")
	for _, k := range c.FieldNames() {
		if v, _ := c.Field(k); v != nil {
			if b, ok := v.(*sudoku.Board); ok {
				c.SetField(k, boardString(b))
			}
		}
	}
	return service.GenericCodec{}.Encode(c)
}

// boardString renders a 9×9 board in the 81-character wire form; bigger
// boards fall back to the multi-line rendering.
func boardString(b *sudoku.Board) string {
	N := b.N()
	if N != 9 {
		return b.String()
	}
	var sb strings.Builder
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			sb.WriteByte(byte('0' + b.Get(i, j)))
		}
	}
	return sb.String()
}

// registerSudokuNets registers the three solver networks of Figures 1–3.
func registerSudokuNets(svc *service.Service, opts service.Options, cfg config) {
	mk := func(build func(sudoku.NetConfig) snet.Node) service.Builder {
		return func(o service.Options) (snet.Node, error) {
			return build(sudoku.NetConfig{
				Pool:      o.Pool,
				Throttle:  cfg.throttle,
				ExitLevel: cfg.level,
				Det:       cfg.det,
			}), nil
		}
	}
	reg := func(name, desc string, build service.Builder) {
		svc.Register(name, desc, opts, build, boardCodec{})
		if node, err := build(opts); err == nil {
			lintNetwork(name, node)
		}
	}
	reg("fig1", "Fig. 1: computeOpts .. (solveOneLevel ** {<done>})",
		mk(sudoku.Fig1Net))
	reg("fig2", "Fig. 2: (solveOneLevel !! <k>) ** {<done>} (full unfolding)",
		mk(sudoku.Fig2Net))
	reg("fig3",
		fmt.Sprintf("Fig. 3: throttled unfolding (m=%d, exit level %d, terminal solve)", cfg.throttle, cfg.level),
		mk(sudoku.Fig3Net))
}

// registerWorkloadNets registers the benchmark-suite networks that work
// over the generic wire codec: the webpipe request/response pipeline (the
// E19 workload — string fields throughout) and the wavefront grid (driven
// by a single {start} record whose field value the boxes never read).  The
// divide-and-conquer workload stays example-only: its segments are []int
// fields with no wire form.
func registerWorkloadNets(svc *service.Service, opts service.Options) {
	svc.Register("webpipe",
		"request/response workload: classify .. (api || page || asset) .. render (E19)",
		opts, func(service.Options) (snet.Node, error) {
			return workloads.WebPipeNet(), nil
		}, nil)
	lintNetwork("webpipe", workloads.WebPipeNet())
	svc.Register("wavefront",
		"wavefront workload: 64×64 dependency grid of synchrocell joins (E17)",
		opts, func(service.Options) (snet.Node, error) {
			return workloads.WavefrontNet(64, 61), nil
		}, nil)
	lintNetwork("wavefront", workloads.WavefrontNet(64, 61))
}

// demoRegistry binds the same built-in demonstration boxes as cmd/snetrun.
func demoRegistry() *lang.Registry {
	return lang.NewRegistry().
		RegisterFunc("inc", func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)+1)
		}).
		RegisterFunc("dec", func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			if n <= 0 {
				return out.Out(2, 0, 1)
			}
			return out.Out(1, n-1)
		}).
		RegisterFunc("double", func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)*2)
		}).
		RegisterFunc("split2", func(args []any, out *snet.Emitter) error {
			if err := out.Out(1, args[0].(int)); err != nil {
				return err
			}
			return out.Out(1, args[0].(int))
		}).
		RegisterFunc("echo", func(args []any, out *snet.Emitter) error {
			return out.Out(1)
		})
}

// registerLangNets parses a textual S-Net program and registers every net
// it defines, bound against the demo box registry, under its own name.
// Deadlock-positive nets — those the verifier flags with sync starvation,
// wait-for cycles or unbounded replication — refuse registration unless
// allowDeadlock (snetd -allow-deadlock) is set, in which case they are
// served with the counterexample logged.
func registerLangNets(svc *service.Service, opts service.Options, path string, allowDeadlock bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return err
	}
	if len(prog.Nets) == 0 {
		return fmt.Errorf("no net definitions in %s", path)
	}
	reg := demoRegistry()
	for _, decl := range prog.Nets {
		name := decl.Name
		if _, err := svc.Network(name); err == nil {
			return fmt.Errorf("net %q in %s collides with an already registered network", name, path)
		}
		// Compile now: unbound boxes and definite type errors (unreachable
		// branches, unroutable shapes, missing split tags) refuse startup
		// with their .snet source positions, instead of surfacing as
		// runtime routing failures mid-session.  The liveness analysis
		// runs over the same compiled plan and its findings — coordination
		// hazards, not definite errors — are logged rather than fatal.
		// The service compiles the builder's output once more on first
		// Open and caches the plan; nodes are stateless blueprints, so
		// every session shares it.
		_, rep, err := lang.AnalyzeNet(prog, name, reg)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		logVerdict(name, rep)
		if rep != nil && !rep.DeadlockFree() && !allowDeadlock {
			return fmt.Errorf("%s: net %s is deadlock-positive (see the counterexample traces above); refusing registration — override with -allow-deadlock", path, name)
		}
		svc.Register(name, "from "+path, opts,
			func(service.Options) (snet.Node, error) {
				return lang.Build(prog, name, reg)
			}, nil)
	}
	return nil
}
