package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/snet/service"
	"repro/sudoku"
)

// TestDemo50ConcurrentSessions is the service acceptance scenario: 50
// concurrent HTTP sessions solving sudoku records through the shared
// networks (each running the concurrent box engine at W=4), verified
// solutions, and non-zero /stats counters.
func TestDemo50ConcurrentSessions(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 12
	}
	svc, err := newService(config{workers: 1, boxWorkers: 4, buffer: 8, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runDemo(svc, n, &out); err != nil {
		t.Fatalf("demo: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("demo output missing OK:\n%s", out.String())
	}
}

func TestBoardCodecRoundTrip(t *testing.T) {
	puzzle := sudoku.Fixed9x9()["easy"]
	wire := service.RecordJSON{
		Fields: map[string]string{"board": boardString(puzzle)},
		Tags:   map[string]int{"k": 3},
	}
	rec, err := boardCodec{}.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rec.Field("board")
	if !ok || !v.(*sudoku.Board).Equal(puzzle) {
		t.Fatalf("decoded board mismatch")
	}
	back := boardCodec{}.Encode(rec)
	if back.Fields["board"] != boardString(puzzle) || back.Tags["k"] != 3 {
		t.Fatalf("round trip: %+v", back)
	}
}

// TestLangNetworkOverHTTP serves a textual S-Net program and runs a record
// through it via the one-shot endpoint.
func TestLangNetworkOverHTTP(t *testing.T) {
	svc, err := newService(config{workers: 1, throttle: 4, level: 40,
		snetFile: "testdata/countdown.snet"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	sess, err := svc.Open("countdown")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	rec, err := service.GenericCodec{}.Decode(service.RecordJSON{Tags: map[string]int{"n": 3}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	if err := sess.Send(ctx, rec); err != nil {
		t.Fatal(err)
	}
	sess.CloseInput()
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done || len(recs) != 1 {
		t.Fatalf("drain: %d records done=%v err=%v", len(recs), done, err)
	}
	if n, _ := recs[0].Tag("n"); n != 0 {
		t.Fatalf("countdown result: %v", recs[0])
	}
	if d, ok := recs[0].Tag("done"); !ok || d != 1 {
		t.Fatalf("countdown result missing <done>: %v", recs[0])
	}
}

func TestNewServiceRegistersNetworks(t *testing.T) {
	svc, err := newService(config{workers: 1, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	var names []string
	for _, n := range svc.Networks() {
		names = append(names, n.Name())
	}
	want := []string{"fig1", "fig2", "fig3"}
	if len(names) != len(want) {
		t.Fatalf("networks: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("networks: %v, want %v", names, want)
		}
	}
}
