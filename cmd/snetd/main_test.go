package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/snet/service"
	"repro/sudoku"
)

// TestDemo50ConcurrentSessions is the service acceptance scenario: 50
// concurrent HTTP sessions solving sudoku records through the shared
// networks (each running the concurrent box engine at W=4), verified
// solutions, and non-zero /stats counters.
func TestDemo50ConcurrentSessions(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 12
	}
	svc, err := newService(config{workers: 1, boxWorkers: 4, buffer: 8, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runDemo(svc, n, &out); err != nil {
		t.Fatalf("demo: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("demo output missing OK:\n%s", out.String())
	}
}

// TestDemoSharedMode runs the demo scenario with every network in shared
// session mode: concurrent HTTP clients churning sessions over one warm
// engine per network, and the replica gauge back at zero afterwards.
func TestDemoSharedMode(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	svc, err := newService(config{workers: 1, boxWorkers: 4, buffer: 8, throttle: 4, level: 40,
		sessionMode: service.Shared})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runDemo(svc, n, &out); err != nil {
		t.Fatalf("shared demo: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("demo output missing OK:\n%s", out.String())
	}
}

// TestGracefulSigtermDrain is the shutdown smoke test: after SIGTERM the
// daemon refuses new sessions immediately but keeps serving a live session
// until it finishes, then exits cleanly.
func TestGracefulSigtermDrain(t *testing.T) {
	svc, err := newService(config{workers: 1, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() { served <- serve(svc, "127.0.0.1:0", stop, 10*time.Second, ready, &out) }()
	base := "http://" + <-ready

	// A live session with a record already fed, not yet drained.
	var opened struct {
		Session string `json:"session"`
	}
	if err := postJSON(base+"/api/sessions", map[string]string{"net": "fig1"}, &opened); err != nil {
		t.Fatalf("open: %v", err)
	}
	puzzle := sudoku.Fixed9x9()["easy"]
	feed := map[string]any{
		"records": []service.RecordJSON{{Fields: map[string]string{"board": boardString(puzzle)}}},
		"close":   true,
	}
	if err := postJSON(base+"/api/sessions/"+opened.Session+"/records", feed, nil); err != nil {
		t.Fatalf("feed: %v", err)
	}

	stop <- syscall.SIGTERM

	// New opens must be refused promptly (503 via ErrShutdown).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(map[string]string{"net": "fig1"})
		resp, err := http.Post(base+"/api/sessions", "application/json", &buf)
		if err != nil {
			t.Fatalf("post during drain: %v", err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("opens still accepted during drain: status %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The live session still drains over the open HTTP surface.
	var res struct {
		Records []service.RecordJSON `json:"records"`
		Done    bool                 `json:"done"`
	}
	if err := getJSON(base+"/api/sessions/"+opened.Session+"/results?wait=20s", &res); err != nil {
		t.Fatalf("drain during shutdown: %v", err)
	}
	solved := false
	for _, rec := range res.Records {
		b, err := sudoku.Parse(rec.Fields["board"])
		if err == nil && b.IsSolved() {
			solved = true
		}
	}
	if !solved {
		t.Fatalf("no solution during drain: %+v", res)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/api/sessions/"+opened.Session, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not return after drain:\n%s", out.String())
	}
	for _, want := range []string{"refusing new sessions", "all sessions drained", "shut down"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("shutdown log missing %q:\n%s", want, out.String())
		}
	}
	if n := svc.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived shutdown", n)
	}
}

// TestGracefulDrainDeadline: a session that never finishes is cancelled
// once the drain deadline passes — serve still returns.
func TestGracefulDrainDeadline(t *testing.T) {
	svc, err := newService(config{workers: 1, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() { served <- serve(svc, "127.0.0.1:0", stop, 200*time.Millisecond, ready, &out) }()
	base := "http://" + <-ready
	// A session nobody ever drains or releases.
	if err := postJSON(base+"/api/sessions", map[string]string{"net": "fig2"}, nil); err != nil {
		t.Fatalf("open: %v", err)
	}
	stop <- syscall.SIGTERM
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("serve wedged past the drain deadline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drain deadline passed") {
		t.Fatalf("missing deadline log:\n%s", out.String())
	}
	if n := svc.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived forced shutdown", n)
	}
}

func TestBoardCodecRoundTrip(t *testing.T) {
	puzzle := sudoku.Fixed9x9()["easy"]
	wire := service.RecordJSON{
		Fields: map[string]string{"board": boardString(puzzle)},
		Tags:   map[string]int{"k": 3},
	}
	rec, err := boardCodec{}.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rec.Field("board")
	if !ok || !v.(*sudoku.Board).Equal(puzzle) {
		t.Fatalf("decoded board mismatch")
	}
	back := boardCodec{}.Encode(rec)
	if back.Fields["board"] != boardString(puzzle) || back.Tags["k"] != 3 {
		t.Fatalf("round trip: %+v", back)
	}
}

// TestLangNetworkOverHTTP serves a textual S-Net program and runs a record
// through it via the one-shot endpoint.
func TestLangNetworkOverHTTP(t *testing.T) {
	svc, err := newService(config{workers: 1, throttle: 4, level: 40,
		snetFile: "testdata/countdown.snet"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	sess, err := svc.Open("countdown")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	rec, err := service.GenericCodec{}.Decode(service.RecordJSON{Tags: map[string]int{"n": 3}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	if err := sess.Send(ctx, rec); err != nil {
		t.Fatal(err)
	}
	sess.CloseInput()
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done || len(recs) != 1 {
		t.Fatalf("drain: %d records done=%v err=%v", len(recs), done, err)
	}
	if n, _ := recs[0].Tag("n"); n != 0 {
		t.Fatalf("countdown result: %v", recs[0])
	}
	if d, ok := recs[0].Tag("done"); !ok || d != 1 {
		t.Fatalf("countdown result missing <done>: %v", recs[0])
	}
}

func TestNewServiceRegistersNetworks(t *testing.T) {
	svc, err := newService(config{workers: 1, throttle: 4, level: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	var names []string
	for _, n := range svc.Networks() {
		names = append(names, n.Name())
	}
	want := []string{"fig1", "fig2", "fig3", "wavefront", "webpipe"}
	if len(names) != len(want) {
		t.Fatalf("networks: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("networks: %v, want %v", names, want)
		}
	}
}
