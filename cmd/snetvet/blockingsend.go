package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ------------------------------------------------------------ blockingsend

// blockingsend checks the shutdown half of the node contract: send and
// sendRecord return false when the downstream reader has hung up (Discard
// on cancellation, or the batch plane shutting down), and a run loop that
// discards that result keeps producing into a stream nobody drains — the
// next full buffer blocks the writer goroutine forever and the network
// never winds down.  Every send in a function that owns both ends of the
// record plane (a *streamReader and a *streamWriter parameter, the run-loop
// signature) must therefore be consumed: branched on, returned, or
// assigned — never a bare expression statement.
//
// Helper functions that take only a writer are exempt (their caller owns
// the loop and the guard), as are stream.go (the implementation itself)
// and tests.
var blockingsendAnalyzer = &analyzer{
	name: "blockingsend",
	doc:  "forbid bare stream sends (result discarded) in node run loops",
	run: func(u *unit) []diagnostic {
		if u.pkgName() != "core" {
			return nil
		}
		var diags []diagnostic
		for _, f := range u.files {
			name := u.filename(f)
			if strings.HasSuffix(name, "_test.go") || name == "stream.go" {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				readers, writers := streamParams(fd)
				if len(readers) == 0 || len(writers) == 0 {
					continue
				}
				wr := map[string]bool{}
				for _, w := range writers {
					wr[w] = true
				}
				diags = append(diags, checkBareSends(u.fset, fd, wr)...)
			}
		}
		return diags
	},
}

// checkBareSends flags every expression-statement call of send/sendRecord
// on a writer parameter: the bool result is discarded, so the loop cannot
// observe the reader hanging up.  Closures are inspected too — a spawned
// sender captures the same writer and the same obligation.
func checkBareSends(fset *token.FileSet, fd *ast.FuncDecl, writers map[string]bool) []diagnostic {
	var diags []diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "send" && sel.Sel.Name != "sendRecord") {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !writers[id.Name] {
			return true
		}
		diags = append(diags, diagnostic{
			analyzer: "blockingsend",
			pos:      fset.Position(call.Pos()),
			msg: fmt.Sprintf("%s: result of %s.%s discarded: a refused send means the reader hung up — stop the loop or the writer blocks forever",
				fd.Name.Name, id.Name, sel.Sel.Name),
		})
		return true
	})
	return diags
}
