package main

import (
	"fmt"
	"go/ast"
	"strings"
)

// ------------------------------------------------------------ recordretain

// recordretain checks the arena ownership discipline of the record plane
// (internal/core/arena.go): a record handed to releaseRecord/ReleaseRecord/
// disownRecord has returned to the pool — any later use of the same
// variable in the same block is a use-after-free of the arena (a double
// release included); and a record emitted downstream (sendRecord, or routed
// through a fanout port) is owned by its consumer — mutating or releasing
// it afterwards races with that consumer.
//
// The analysis is a linear scan per statement list, the same discipline as
// streamdiscard: state does not escape branch bodies (a release followed by
// continue/return inside an if is the normal drop-path idiom), and an
// assignment to the variable makes it live again.
var recordretainAnalyzer = &analyzer{
	name: "recordretain",
	doc:  "forbid using a record after releasing it, or mutating one after emitting it",
	run: func(u *unit) []diagnostic {
		var diags []diagnostic
		for _, f := range u.files {
			if strings.HasSuffix(u.filename(f), "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.FuncDecl:
					body = n.Body
				case *ast.FuncLit:
					body = n.Body
				}
				if body == nil {
					return true
				}
				w := &retainWalker{u: u}
				w.block(body.List, map[string]string{})
				diags = append(diags, w.diags...)
				return true
			})
		}
		return diags
	},
}

type retainWalker struct {
	u     *unit
	diags []diagnostic
}

// releaseFuncs hand a record back to the arena; emitMutators mutate the
// record they are invoked on.
var releaseFuncs = map[string]bool{
	"releaseRecord": true, "ReleaseRecord": true, "disownRecord": true,
}
var recordMutators = map[string]bool{
	"SetField": true, "SetTag": true, "DeleteField": true, "DeleteTag": true,
}

// block scans one statement list.  dead maps a variable name to how it was
// given away ("released" or "emitted"); branch bodies get a copy, and their
// own transfers do not leak back out.
func (w *retainWalker) block(list []ast.Stmt, dead map[string]string) {
	for _, s := range list {
		w.checkStmt(s, dead)
		switch s := s.(type) {
		case *ast.IfStmt:
			w.block(s.Body.List, copyState(dead))
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				w.block(el.List, copyState(dead))
			case *ast.IfStmt:
				w.block([]ast.Stmt{el}, copyState(dead))
			}
		case *ast.ForStmt:
			w.block(s.Body.List, copyState(dead))
		case *ast.RangeStmt:
			w.block(s.Body.List, copyState(dead))
		case *ast.BlockStmt:
			w.block(s.List, copyState(dead))
		case *ast.LabeledStmt:
			w.block([]ast.Stmt{s.Stmt}, dead)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.block(cc.Body, copyState(dead))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.block(cc.Body, copyState(dead))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.block(cc.Body, copyState(dead))
				}
			}
		}
		w.updateState(s, dead)
	}
}

func copyState(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// checkStmt reports uses of dead variables in the statement itself, not its
// nested blocks (those are scanned with their own state copy).  Only the
// statement's own expressions are inspected: for an if/for this is the
// init/condition, for everything else the whole statement.
func (w *retainWalker) checkStmt(s ast.Stmt, dead map[string]string) {
	if len(dead) == 0 {
		return
	}
	var exprs []ast.Node
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			exprs = append(exprs, s.Init)
		}
		exprs = append(exprs, s.Cond)
	case *ast.ForStmt:
		if s.Init != nil {
			exprs = append(exprs, s.Init)
		}
		if s.Cond != nil {
			exprs = append(exprs, s.Cond)
		}
	case *ast.RangeStmt:
		exprs = append(exprs, s.X)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			exprs = append(exprs, s.Tag)
		}
	case *ast.AssignStmt:
		// A plain identifier on the left is written, not used; anything
		// else (rec.field, slice[i]) still reads its base.
		for _, e := range s.Rhs {
			exprs = append(exprs, e)
		}
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				exprs = append(exprs, lhs)
			}
		}
	case *ast.BlockStmt, *ast.LabeledStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// handled structurally by block()
	default:
		exprs = append(exprs, s)
	}
	for _, e := range exprs {
		w.checkUses(e, dead)
	}
}

// checkUses flags references to dead variables inside one expression or
// simple statement, skipping nested function literals (their bodies run
// later, under their own scan).
func (w *retainWalker) checkUses(root ast.Node, dead map[string]string) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			how, isDead := dead[n.Name]
			if !isDead {
				return true
			}
			if how == "released" {
				w.diags = append(w.diags, diagnostic{
					analyzer: "recordretain",
					pos:      w.u.fset.Position(n.Pos()),
					msg: fmt.Sprintf("%s used after release: the record has returned to the arena",
						n.Name),
				})
			}
		case *ast.CallExpr:
			// Mutation of an emitted record: rec.SetTag(...) etc., or a
			// release after the consumer already owns it.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok {
				if id, ok := sel.X.(*ast.Ident); ok && dead[id.Name] == "emitted" && recordMutators[sel.Sel.Name] {
					w.diags = append(w.diags, diagnostic{
						analyzer: "recordretain",
						pos:      w.u.fset.Position(n.Pos()),
						msg: fmt.Sprintf("%s.%s after emit: the consumer owns the record now",
							id.Name, sel.Sel.Name),
					})
					return false
				}
			}
			if name, arg := transferCall(n); name != "" && arg != "" && dead[arg] == "emitted" && releaseFuncs[name] {
				w.diags = append(w.diags, diagnostic{
					analyzer: "recordretain",
					pos:      w.u.fset.Position(n.Pos()),
					msg: fmt.Sprintf("%s released after emit: the consumer owns the record now",
						arg),
				})
				return false
			}
		}
		return true
	})
}

// updateState applies one statement's ownership transfers and assignments
// to the scan state.
func (w *retainWalker) updateState(s ast.Stmt, dead map[string]string) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, arg := transferCall(call); arg != "" {
				if releaseFuncs[name] {
					dead[arg] = "released"
				} else if name == "sendRecord" || name == "route" {
					dead[arg] = "emitted"
				}
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				delete(dead, id.Name)
			}
		}
	case *ast.IfStmt:
		// `if !f.route(port, rec) { break }` — the transfer is in the
		// condition; it holds for the statements after the if.
		ast.Inspect(s.Cond, func(n ast.Node) bool {
			if n, ok := n.(*ast.FuncLit); ok {
				_ = n
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if name, arg := transferCall(call); arg != "" && (name == "sendRecord" || name == "route") {
					dead[arg] = "emitted"
				}
			}
			return true
		})
	}
}

// transferCall recognizes the ownership-transferring calls:
// releaseRecord(rec) / ReleaseRecord(rec) / disownRecord(rec) (bare or
// pkg-qualified), w.sendRecord(rec), and f.route(port, rec).  It returns
// the call's name and the record argument's identifier, or "".
func transferCall(call *ast.CallExpr) (name, arg string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", ""
	}
	argPos := 0
	switch {
	case releaseFuncs[name], name == "sendRecord":
		argPos = 0
	case name == "route":
		argPos = 1
	default:
		return "", ""
	}
	if len(call.Args) <= argPos {
		return name, ""
	}
	if id, ok := call.Args[argPos].(*ast.Ident); ok {
		return name, id.Name
	}
	return name, ""
}
