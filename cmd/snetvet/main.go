// Command snetvet checks the repository's runtime invariants that the Go
// compiler cannot see: raw item/frame channels outside stream.go, node run
// loops that return without draining their reader or that discard a send
// result (ignoring the reader hanging up), and "__snet_" reserved
// literals spelled outside reserved.go.  The analyzers are purely
// syntactic, so the tool is self-contained — no typechecking, no export
// data, no dependencies beyond the standard library.
//
// It speaks the `go vet -vettool` protocol, so the whole repository is
// checked with:
//
//	go build -o /tmp/snetvet ./cmd/snetvet
//	go vet -vettool=/tmp/snetvet ./...
//
// and it also runs standalone over files, directories, or dir/... trees:
//
//	snetvet internal/core
//	snetvet ./...
//
// Findings are printed as file:line:col: message on stderr and the exit
// status is 2 (1 for usage or parse errors), the vet convention.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	var operands []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			return printVersion(stdout, stderr)
		case a == "-flags":
			// The go command interrogates the tool's flags; none are
			// forwarded beyond the standard ones handled here.
			fmt.Fprintln(stdout, "[]")
			return 0
		case a == "-json":
			jsonOut = true
		case a == "-h" || a == "-help" || a == "--help":
			usage(stderr)
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(stderr, "snetvet: unknown flag %s\n", a)
			usage(stderr)
			return 1
		default:
			operands = append(operands, a)
		}
	}
	if len(operands) == 0 {
		usage(stderr)
		return 1
	}
	// go vet invokes the tool with a single *.cfg argument describing one
	// package; anything else is the standalone file/directory mode.
	if len(operands) == 1 && strings.HasSuffix(operands[0], ".cfg") {
		return runVetCfg(operands[0], jsonOut, stdout, stderr)
	}
	return runStandalone(operands, jsonOut, stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: snetvet [-json] (package.cfg | file.go... | dir... | dir/...)")
}

// printVersion implements the -V=full handshake: the go command hashes the
// output into the build cache key, so it must be stable per binary.  The
// format mirrors x/tools' unitchecker.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "snetvet:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "snetvet:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "snetvet:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), h.Sum(nil))
	return 0
}

// vetConfig is the subset of the go command's vet configuration file the
// syntactic analyzers need.  Unknown fields (import maps, export data,
// facts of dependencies) are ignored by encoding/json.
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes one package as directed by the go command.
func runVetCfg(path string, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "snetvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "snetvet: %s: %v\n", path, err)
		return 1
	}
	// The go command always expects the facts file, even from a tool with
	// no facts to export.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("snetvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(stderr, "snetvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	u, err := parseUnit(cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "snetvet:", err)
		return 1
	}
	return report(cfg.ImportPath, analyze(u), jsonOut, stdout, stderr)
}

// runStandalone analyzes loose files and directory trees, grouping files
// by (directory, package clause) so external test packages form their own
// units just as they do under go vet.
func runStandalone(operands []string, jsonOut bool, stdout, stderr io.Writer) int {
	var files []string
	seen := map[string]bool{}
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			files = append(files, path)
		}
	}
	for _, op := range operands {
		switch {
		case strings.HasSuffix(op, "/..."):
			root := strings.TrimSuffix(op, "/...")
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && path != root {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					add(path)
				}
				return nil
			})
			if err != nil {
				fmt.Fprintln(stderr, "snetvet:", err)
				return 1
			}
		default:
			info, err := os.Stat(op)
			if err != nil {
				fmt.Fprintln(stderr, "snetvet:", err)
				return 1
			}
			if info.IsDir() {
				entries, err := os.ReadDir(op)
				if err != nil {
					fmt.Fprintln(stderr, "snetvet:", err)
					return 1
				}
				for _, e := range entries {
					if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
						add(filepath.Join(op, e.Name()))
					}
				}
			} else {
				add(op)
			}
		}
	}
	// Group into units.
	fset := token.NewFileSet()
	units := map[string]*unit{} // "dir\x00pkg" -> unit
	var keys []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(stderr, "snetvet:", err)
			return 1
		}
		key := filepath.Dir(path) + "\x00" + f.Name.Name
		u, ok := units[key]
		if !ok {
			u = &unit{fset: fset}
			units[key] = u
			keys = append(keys, key)
		}
		u.files = append(u.files, f)
	}
	sort.Strings(keys)
	worst := 0
	for _, key := range keys {
		dir, _, _ := strings.Cut(key, "\x00")
		if code := report(dir, analyze(units[key]), jsonOut, stdout, stderr); code > worst {
			worst = code
		}
	}
	return worst
}

func parseUnit(paths []string) (*unit, error) {
	u := &unit{fset: token.NewFileSet()}
	for _, path := range paths {
		f, err := parser.ParseFile(u.fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		u.files = append(u.files, f)
	}
	return u, nil
}

func analyze(u *unit) []diagnostic {
	var diags []diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.run(u)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos.Filename != diags[j].pos.Filename {
			return diags[i].pos.Filename < diags[j].pos.Filename
		}
		if diags[i].pos.Line != diags[j].pos.Line {
			return diags[i].pos.Line < diags[j].pos.Line
		}
		return diags[i].pos.Column < diags[j].pos.Column
	})
	return diags
}

// report prints one unit's diagnostics: plain text on stderr with exit
// code 2 (the vet convention), or the unitchecker-compatible JSON object
// on stdout with exit code 0.
func report(unitName string, diags []diagnostic, jsonOut bool, stdout, stderr io.Writer) int {
	if jsonOut {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.analyzer] = append(byAnalyzer[d.analyzer],
				jsonDiag{Posn: d.pos.String(), Message: d.msg})
		}
		out := map[string]map[string][]jsonDiag{unitName: byAnalyzer}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.pos, d.msg)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
