// Seeded fusesafe violations: a fused executor regrowing per-stage
// concurrency and stashing in-flight records outside the sanctioned
// cur/next/src slots.
package core

type Record struct{ n int }

type fusedBadExec struct {
	cur, next []*Record
	stash     *Record
	feed      chan *Record
}

func (x *fusedBadExec) process(rec *Record) {
	x.stash = rec // want: retained in field stash
	go func() {   // want: go statement
		x.feed <- rec
	}()
	for _, r := range x.cur {
		x.stash = r                // want: retained in field stash
		x.next = append(x.next, r) // ok: sanctioned buffer
	}
	hold := make(chan *Record, 1) // want: channel plumbing
	_ = hold
}

func (x *fusedBadExec) swapOK(rec *Record) {
	// The sanctioned idioms of the real executor must stay clean: the
	// Emitter src slot, the buffer-pointer hand-off, the cur/next swap.
	var em struct {
		src *Record
		buf *[]*Record
	}
	em.src, em.buf = rec, &x.next
	x.cur = append(x.cur[:0], rec)
	last := x.cur[len(x.cur)-1]
	x.next = append(x.next, last)
	x.cur, x.next = x.next, x.cur
	em.src = nil
}

// plainPump is outside the fused scope: its channel is rawchan's business
// (not an item/frame channel, so it is clean there too), not fusesafe's.
func plainPump() chan *Record { return make(chan *Record, 4) }
