// Package recordretain seeds violations of the arena ownership discipline:
// a record used after release, a double release, and a record mutated after
// it was emitted downstream.  The ok* functions exercise the patterns the
// analyzer must NOT flag.
package recordretain

type record struct{}

func (*record) SetTag(string, int) *record { return nil }
func (*record) String() string             { return "" }

type writer struct{}

func (*writer) sendRecord(*record) bool { return true }

type port struct{}

type fanout struct{}

func (*fanout) route(*port, *record) bool { return true }

func releaseRecord(*record) {}

func acquireRecord() *record { return &record{} }

func useAfterRelease(rec *record) string {
	releaseRecord(rec)
	return rec.String() // want: used after release
}

func doubleRelease(rec *record) {
	releaseRecord(rec)
	releaseRecord(rec) // want: used after release
}

func mutateAfterEmit(w *writer, rec *record) {
	w.sendRecord(rec)
	rec.SetTag("n", 1) // want: mutated after emit
}

func releaseAfterRoute(f *fanout, p *port, rec *record) {
	if !f.route(p, rec) {
		return
	}
	releaseRecord(rec) // want: released after emit
}

func okReassigned(rec *record) string {
	releaseRecord(rec)
	rec = acquireRecord()
	return rec.String() // rec is live again
}

func okDropPath(recs []*record, bad bool) {
	for _, rec := range recs {
		if bad {
			releaseRecord(rec)
			continue
		}
		_ = rec.String() // the release above did not execute on this path
	}
}

func okReleaseLoop(recs []*record) {
	// Each iteration releases its own variable; state must not leak
	// across iterations.
	for _, rec := range recs {
		releaseRecord(rec)
	}
	for _, rec := range recs {
		_ = rec
	}
}
