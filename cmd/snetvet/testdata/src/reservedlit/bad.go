// Seeded reservedlit violations: control-record labels spelled outside
// reserved.go.
package engine

const closeMarker = "__snet_close" // want: reserved literal

func isControl(label string) bool {
	return label == "__snet_barrier" // want: reserved literal
}

// Mid-string occurrences are prose, not labels: no finding.
const doc = "records labelled with the __snet_ prefix are control records"
