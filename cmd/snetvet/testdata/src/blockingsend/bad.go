// Seeded blockingsend violations and non-violations: node run loops that
// do and do not observe the result of send/sendRecord.  A discarded result
// means the loop cannot see the downstream reader hang up, so the writer
// eventually blocks forever on a full stream.
package core

type item struct{ rec *int }
type streamReader struct{}
type streamWriter struct{}

func (*streamReader) recv() (item, bool)   { return item{}, false }
func (*streamReader) Discard()             {}
func (*streamWriter) send(item) bool       { return false }
func (*streamWriter) sendRecord(*int) bool { return false }
func (*streamWriter) close()               {}

// fireAndForgetRun drops both send results mid-loop: two violations.
func fireAndForgetRun(in *streamReader, out *streamWriter) {
	defer in.Discard()
	defer out.close()
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		out.send(it)           // want: result discarded
		out.sendRecord(it.rec) // want: result discarded
	}
}

// guardedRun branches on every send result and drains the reader on the
// refused-send path: no finding.
func guardedRun(in *streamReader, out *streamWriter) {
	defer out.close()
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if !out.send(it) {
			in.Discard()
			return
		}
	}
}

// helperSend takes only the writer — not a run loop; its caller owns the
// loop and the guard: no finding.
func helperSend(out *streamWriter, it item) {
	out.send(it)
}
