// Seeded rawchan violations: a node growing its own channel plumbing
// instead of the streamReader/streamWriter plane.
package core

type item struct{ n int }
type frame []item

type leakyNode struct {
	ch   chan item // want: raw chan item
	back <-chan frame
}

func (l *leakyNode) pump() {
	feed := make(chan item, 8) // want: raw chan item
	go func(in chan<- item) {  // want: raw chan item
		in <- item{n: 1}
	}(feed)
	l.ch = feed
}
