// Seeded streamdiscard violations and non-violations: run loops that do
// and do not drain their reader on early exit.
package core

type item struct{ rec *int }
type streamReader struct{}
type streamWriter struct{}

func (*streamReader) recv() (item, bool)  { return item{}, false }
func (*streamReader) Discard()            {}
func (*streamWriter) send(item) bool      { return false }
func (*streamWriter) close()              {}
func handoff(*streamReader, *streamWriter) {}

// leakyRun returns mid-loop without Discard: the violation.
func leakyRun(in *streamReader, out *streamWriter) {
	defer out.close()
	for {
		it, ok := in.recv()
		if !ok {
			return // exempt: the stream is closed and drained
		}
		if !out.send(it) {
			return // want: return without in.Discard()
		}
	}
}

// cleanRun discards before every early return: no finding.
func cleanRun(in *streamReader, out *streamWriter) {
	defer out.close()
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if !out.send(it) {
			in.Discard()
			return
		}
	}
}

// deferredRun covers all paths with a deferred Discard: no finding.
func deferredRun(in *streamReader, out *streamWriter) {
	defer in.Discard()
	defer out.close()
	if it, ok := in.recv(); ok && out.send(it) {
		return
	}
}

// wiringRun never consumes from the reader itself — it hands both ends to
// another stage, which then owns the drain obligation: no finding.
func wiringRun(in *streamReader, out *streamWriter) {
	handoff(in, out)
}
