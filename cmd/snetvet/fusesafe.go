package main

import (
	"fmt"
	"go/ast"
	"strings"
)

// --------------------------------------------------------------- fusesafe

// fusesafe pins the two invariants the fusion pass (internal/core/fuse.go)
// rests on:
//
//  1. A fused segment is single-goroutine by contract — that is the whole
//     point of fusing.  Spawning goroutines or growing channel plumbing
//     inside fused code reintroduces exactly the per-stage concurrency the
//     pass removed, silently, and with none of the stream plane's flush,
//     marker and drain discipline.
//
//  2. Records flowing through a fused segment live in the executor's
//     cur/next buffers (plus the Emitter's src slot while a box invocation
//     runs).  Retaining one anywhere else — a struct field that outlives
//     the per-record process() call — aliases an arena record across stage
//     boundaries, and the arena will recycle it under the stash.
//
// The scope is syntactic: functions named fused*/newFused* and methods on
// fused* receivers in package core.
var fusesafeAnalyzer = &analyzer{
	name: "fusesafe",
	doc:  "keep fused segments single-goroutine and free of record retention",
	run: func(u *unit) []diagnostic {
		if u.pkgName() != "core" {
			return nil
		}
		var diags []diagnostic
		for _, f := range u.files {
			if strings.HasSuffix(u.filename(f), "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !fusedScope(fn) {
					continue
				}
				w := &fuseWalker{u: u, scope: fn.Name.Name, recs: map[string]bool{}}
				w.collectRecordVars(fn)
				w.walk(fn.Body)
				diags = append(diags, w.diags...)
			}
		}
		return diags
	},
}

// fusedScope reports whether fn belongs to the fused executor: by name
// (fusedX, newFusedX) or by receiver (methods on fused* types).
func fusedScope(fn *ast.FuncDecl) bool {
	if strings.HasPrefix(fn.Name.Name, "fused") || strings.HasPrefix(fn.Name.Name, "newFused") {
		return true
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && strings.HasPrefix(id.Name, "fused")
}

// sanctionedRecFields are the only struct fields allowed to hold in-flight
// records inside a fused segment: the executor's swap buffers and the
// Emitter's source slot for the currently-running box invocation.
var sanctionedRecFields = map[string]bool{"cur": true, "next": true, "src": true}

type fuseWalker struct {
	u     *unit
	scope string
	recs  map[string]bool // identifiers known to hold an in-flight record
	diags []diagnostic
}

// collectRecordVars gathers the names that carry records through the
// function: *Record parameters, range variables over the cur/next buffers,
// and variables bound from indexing them.
func (w *fuseWalker) collectRecordVars(fn *ast.FuncDecl) {
	if fn.Type.Params != nil {
		for _, p := range fn.Type.Params.List {
			if isRecordPtr(p.Type) {
				for _, n := range p.Names {
					w.recs[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok && isCurNextExpr(n.X) {
				w.recs[id.Name] = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				idx, ok := rhs.(*ast.IndexExpr)
				if !ok || !isCurNextExpr(idx.X) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					w.recs[id.Name] = true
				}
			}
		}
		return true
	})
}

func isRecordPtr(t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	id, ok := star.X.(*ast.Ident)
	return ok && id.Name == "Record"
}

// isCurNextExpr matches x.cur, x.next and slices of them.
func isCurNextExpr(e ast.Expr) bool {
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = sl.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sanctionedRecFields[sel.Sel.Name] && sel.Sel.Name != "src"
}

func (w *fuseWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.diags = append(w.diags, diagnostic{
				analyzer: "fusesafe",
				pos:      w.u.fset.Position(n.Pos()),
				msg: fmt.Sprintf("go statement in %s: a fused segment is single-goroutine by contract",
					w.scope),
			})
		case *ast.ChanType:
			w.diags = append(w.diags, diagnostic{
				analyzer: "fusesafe",
				pos:      w.u.fset.Position(n.Pos()),
				msg: fmt.Sprintf("channel plumbing in %s: fused stages hand records over in the cur/next buffers",
					w.scope),
			})
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sanctionedRecFields[sel.Sel.Name] {
					continue
				}
				if i >= len(n.Rhs) {
					break
				}
				id, ok := n.Rhs[i].(*ast.Ident)
				if !ok || !w.recs[id.Name] {
					continue
				}
				w.diags = append(w.diags, diagnostic{
					analyzer: "fusesafe",
					pos:      w.u.fset.Position(n.Pos()),
					msg: fmt.Sprintf("record %s retained in field %s across a fused stage boundary: only cur/next/src may hold in-flight records",
						id.Name, sel.Sel.Name),
				})
			}
		}
		return true
	})
}
