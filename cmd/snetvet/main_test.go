package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runVet is the test harness around run(): capture both streams.
func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRepoIsClean vets every Go file of the repository with all three
// analyzers — this is the promoted form of the old core-package lint test,
// now covering the whole tree.
func TestRepoIsClean(t *testing.T) {
	code, _, stderr := runVet(t, "../../...")
	if code != 0 {
		t.Fatalf("repository has findings (exit %d):\n%s", code, stderr)
	}
}

// TestRawchanFindsSeededViolations checks the rawchan analyzer flags every
// raw item/frame channel in the fixture and nothing else.
func TestRawchanFindsSeededViolations(t *testing.T) {
	code, _, stderr := runVet(t, "testdata/src/rawchan")
	if code != 2 {
		t.Fatalf("want exit 2, got %d:\n%s", code, stderr)
	}
	lines := nonEmptyLines(stderr)
	if len(lines) != 4 {
		t.Fatalf("want 4 findings (two fields, make, param), got %d:\n%s", len(lines), stderr)
	}
	for _, l := range lines {
		if !strings.Contains(l, "raw chan item") && !strings.Contains(l, "raw chan frame") {
			t.Errorf("unexpected finding: %s", l)
		}
	}
}

// TestStreamDiscardFindsLeakyReturn checks exactly the undrained return is
// flagged: ok-guarded returns, Discard-preceded returns, deferred Discard
// and pure wiring functions all pass.
func TestStreamDiscardFindsLeakyReturn(t *testing.T) {
	code, _, stderr := runVet(t, "testdata/src/streamdiscard")
	if code != 2 {
		t.Fatalf("want exit 2, got %d:\n%s", code, stderr)
	}
	lines := nonEmptyLines(stderr)
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 finding, got %d:\n%s", len(lines), stderr)
	}
	if !strings.Contains(lines[0], "leakyRun") || !strings.Contains(lines[0], "in.Discard()") {
		t.Errorf("finding should name leakyRun and the missing call: %s", lines[0])
	}
	if want := "bad.go:24:4"; !strings.Contains(lines[0], want) {
		t.Errorf("finding should point at the leaky return (%s): %s", want, lines[0])
	}
}

// TestBlockingSendFindsSeededViolations checks the run-loop send contract:
// exactly the two fire-and-forget sends are flagged; result-branched sends
// and writer-only helper functions pass.
func TestBlockingSendFindsSeededViolations(t *testing.T) {
	code, _, stderr := runVet(t, "testdata/src/blockingsend")
	if code != 2 {
		t.Fatalf("want exit 2, got %d:\n%s", code, stderr)
	}
	lines := nonEmptyLines(stderr)
	if len(lines) != 2 {
		t.Fatalf("want exactly 2 findings, got %d:\n%s", len(lines), stderr)
	}
	wants := []string{"out.send", "out.sendRecord"}
	for i, l := range lines {
		if !strings.Contains(l, "fireAndForgetRun") || !strings.Contains(l, wants[i]) {
			t.Errorf("finding %d should name fireAndForgetRun and %s: %s", i, wants[i], l)
		}
		if !strings.Contains(l, "result discarded") && !strings.Contains(l, "result of") {
			t.Errorf("finding %d should explain the discarded result: %s", i, l)
		}
	}
}

// TestReservedLitFindsSeededViolations checks prefix literals are flagged
// but mid-string prose mentions are not.
func TestReservedLitFindsSeededViolations(t *testing.T) {
	code, _, stderr := runVet(t, "testdata/src/reservedlit")
	if code != 2 {
		t.Fatalf("want exit 2, got %d:\n%s", code, stderr)
	}
	lines := nonEmptyLines(stderr)
	if len(lines) != 2 {
		t.Fatalf("want 2 findings, got %d:\n%s", len(lines), stderr)
	}
}

// TestRecordRetainFindsSeededViolations checks the arena-discipline
// analyzer: use-after-release, double release, mutate-after-emit and
// release-after-route are flagged; reassignment and branch-local drop
// paths are not.
func TestRecordRetainFindsSeededViolations(t *testing.T) {
	code, _, stderr := runVet(t, "testdata/src/recordretain")
	if code != 2 {
		t.Fatalf("want exit 2, got %d:\n%s", code, stderr)
	}
	lines := nonEmptyLines(stderr)
	if len(lines) != 4 {
		t.Fatalf("want 4 findings, got %d:\n%s", len(lines), stderr)
	}
	wants := []string{
		"used after release",
		"used after release",
		"after emit",
		"released after emit",
	}
	for i, l := range lines {
		if !strings.Contains(l, wants[i]) {
			t.Errorf("finding %d: want %q in %s", i, wants[i], l)
		}
	}
}

// TestFuseSafeFindsSeededViolations checks the fusion-safety analyzer: go
// statements, channel plumbing and record retention inside fused-scope
// functions are flagged; the executor's sanctioned idioms (cur/next swap,
// Emitter src slot, buffer-pointer hand-off) and non-fused functions pass.
func TestFuseSafeFindsSeededViolations(t *testing.T) {
	code, _, stderr := runVet(t, "testdata/src/fusesafe")
	if code != 2 {
		t.Fatalf("want exit 2, got %d:\n%s", code, stderr)
	}
	lines := nonEmptyLines(stderr)
	if len(lines) != 4 {
		t.Fatalf("want 4 findings, got %d:\n%s", len(lines), stderr)
	}
	wants := []string{
		"retained in field stash",
		"go statement in process",
		"retained in field stash",
		"channel plumbing in process",
	}
	for i, l := range lines {
		if !strings.Contains(l, wants[i]) {
			t.Errorf("finding %d: want %q in %s", i, wants[i], l)
		}
	}
}

// TestJSONOutput checks the unitchecker-compatible JSON form: exit 0, all
// findings keyed by unit then analyzer.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runVet(t, "-json", "testdata/src/reservedlit")
	if code != 0 {
		t.Fatalf("json mode must exit 0, got %d", code)
	}
	var out map[string]map[string][]struct{ Posn, Message string }
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	unit := out["testdata/src/reservedlit"]
	if len(unit["reservedlit"]) != 2 {
		t.Fatalf("want 2 reservedlit diagnostics in JSON, got %+v", out)
	}
}

// TestVetCfgProtocol drives the go-vet side door by hand: a .cfg file
// describing the fixture package, a facts file the go command expects to
// exist afterwards, and the VetxOnly fast path.
func TestVetCfgProtocol(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	goFile, err := filepath.Abs("testdata/src/reservedlit/bad.go")
	if err != nil {
		t.Fatal(err)
	}
	writeCfg := func(vetxOnly bool) string {
		cfg := map[string]any{
			"ImportPath": "example/reservedlit",
			"GoFiles":    []string{goFile},
			"VetxOnly":   vetxOnly,
			"VetxOutput": vetx,
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "vet.cfg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	code, _, stderr := runVet(t, writeCfg(false))
	if code != 2 {
		t.Fatalf("want exit 2 on findings, got %d:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "example/reservedlit") && !strings.Contains(stderr, "bad.go") {
		t.Errorf("diagnostics missing position info:\n%s", stderr)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}

	if err := os.Remove(vetx); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runVet(t, writeCfg(true))
	if code != 0 {
		t.Fatalf("VetxOnly must exit 0, got %d:\n%s", code, stderr)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOnly must still write the facts file: %v", err)
	}
}

// TestVersionAndFlagsHandshake checks the two query modes the go command
// uses before ever running the tool.
func TestVersionAndFlagsHandshake(t *testing.T) {
	code, stdout, _ := runVet(t, "-flags")
	if code != 0 || strings.TrimSpace(stdout) != "[]" {
		t.Errorf("-flags: exit %d, output %q", code, stdout)
	}
	code, stdout, _ = runVet(t, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full: exit %d", code)
	}
	if !regexp.MustCompile(`^\S+ version devel comments-go-here buildID=[0-9a-f]{64}\n$`).MatchString(stdout) {
		t.Errorf("-V=full output %q does not match the handshake format", stdout)
	}
}

// TestGoVetEndToEnd builds the tool and runs it through the real
// `go vet -vettool` pipeline over the core package: the full protocol
// (version handshake, flag query, cfg files, vetx outputs) against the
// actual go command.
func TestGoVetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets packages")
	}
	bin := filepath.Join(t.TempDir(), "snetvet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "repro/internal/core", "repro/internal/analysis")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

func nonEmptyLines(s string) []string {
	var lines []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return lines
}
