package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// A unit is one package's worth of parsed-but-untyped syntax.  The
// analyzers are purely syntactic: they need identifier spellings and
// statement structure, not type information, which keeps the driver free
// of the export-data plumbing a typed vet tool would need.
type unit struct {
	fset  *token.FileSet
	files []*ast.File
}

func (u *unit) pkgName() string {
	if len(u.files) == 0 {
		return ""
	}
	return u.files[0].Name.Name
}

func (u *unit) filename(f *ast.File) string {
	return filepath.Base(u.fset.Position(f.Package).Filename)
}

// A diagnostic is one finding: the analyzer that produced it, where, and
// why.
type diagnostic struct {
	analyzer string
	pos      token.Position
	msg      string
}

type analyzer struct {
	name string
	doc  string
	run  func(u *unit) []diagnostic
}

var analyzers = []*analyzer{rawchanAnalyzer, streamdiscardAnalyzer, blockingsendAnalyzer, reservedlitAnalyzer, recordretainAnalyzer, fusesafeAnalyzer}

// ---------------------------------------------------------------- rawchan

// rawchan pins the record plane's channel as an implementation detail of
// stream.go: every node communicates through streamReader/streamWriter,
// never over a raw item or frame channel.  A node that regrows its own
// channel plumbing regrows its own flush, marker and drain bugs with it.
var rawchanAnalyzer = &analyzer{
	name: "rawchan",
	doc:  "forbid raw item/frame channels outside internal/core/stream.go",
	run: func(u *unit) []diagnostic {
		if u.pkgName() != "core" {
			return nil
		}
		var diags []diagnostic
		for _, f := range u.files {
			name := u.filename(f)
			// stream.go owns the channel; its white-box test may build
			// harness channels of its own.
			if name == "stream.go" || name == "stream_test.go" {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				ch, ok := n.(*ast.ChanType)
				if !ok {
					return true
				}
				if id, ok := ch.Value.(*ast.Ident); ok && (id.Name == "item" || id.Name == "frame") {
					diags = append(diags, diagnostic{
						analyzer: "rawchan",
						pos:      u.fset.Position(ch.Pos()),
						msg: fmt.Sprintf("raw chan %s outside stream.go: use streamReader/streamWriter",
							id.Name),
					})
				}
				return true
			})
		}
		return diags
	},
}

// ------------------------------------------------------------ reservedlit

// reservedlit keeps the "__snet_" control-record namespace in one place:
// reserved.go defines the marker labels and IsReservedLabel; a literal
// spelled anywhere else bypasses that single point of truth and silently
// drifts when the namespace changes.
var reservedlitAnalyzer = &analyzer{
	name: "reservedlit",
	doc:  "forbid \"__snet_\"-prefixed string literals outside internal/core/reserved.go",
	run: func(u *unit) []diagnostic {
		var diags []diagnostic
		for _, f := range u.files {
			name := u.filename(f)
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			if u.pkgName() == "core" && name == "reserved.go" {
				continue
			}
			// Spelled in two parts so the analyzer does not flag itself.
			reserved := "__" + "snet_"
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.HasPrefix(s, reserved) {
					return true
				}
				diags = append(diags, diagnostic{
					analyzer: "reservedlit",
					pos:      u.fset.Position(lit.Pos()),
					msg:      "\"__snet_\" literal outside reserved.go: use the core reserved-label constants",
				})
				return true
			})
		}
		return diags
	},
}

// ---------------------------------------------------------- streamdiscard

// streamdiscard checks the node contract documented on Node.run: a
// function that owns both ends of the record plane (a *streamReader and a
// *streamWriter parameter) and consumes from the reader must call
// reader.Discard() on every early-return path — otherwise an upstream
// sender blocked on a full stream never unblocks and the shutdown leaks a
// goroutine.
//
// A return is considered safe when:
//   - it is guarded by `if !ok` on a variable assigned from recv or
//     recvTimeout (the stream is already closed and drained), or
//   - an earlier statement in the same block calls reader.Discard() or
//     hands the reader to another function (which then owns the contract),
//     or
//   - the function defers reader.Discard().
var streamdiscardAnalyzer = &analyzer{
	name: "streamdiscard",
	doc:  "require streamReader.Discard() on every early-return path of node run loops",
	run: func(u *unit) []diagnostic {
		if u.pkgName() != "core" {
			return nil
		}
		var diags []diagnostic
		for _, f := range u.files {
			name := u.filename(f)
			if strings.HasSuffix(name, "_test.go") || name == "stream.go" {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				readers, writers := streamParams(fd)
				if len(readers) == 0 || len(writers) == 0 {
					continue
				}
				for _, rd := range readers {
					diags = append(diags, checkDiscard(u.fset, fd, rd)...)
				}
			}
		}
		return diags
	},
}

// streamParams reports the names of the *streamReader and *streamWriter
// parameters of a function declaration.
func streamParams(fd *ast.FuncDecl) (readers, writers []string) {
	for _, field := range fd.Type.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		id, ok := star.X.(*ast.Ident)
		if !ok {
			continue
		}
		switch id.Name {
		case "streamReader":
			for _, n := range field.Names {
				if n.Name != "_" {
					readers = append(readers, n.Name)
				}
			}
		case "streamWriter":
			for _, n := range field.Names {
				if n.Name != "_" {
					writers = append(writers, n.Name)
				}
			}
		}
	}
	return readers, writers
}

// checkDiscard walks one function body looking for return statements that
// leave the reader undrained.
func checkDiscard(fset *token.FileSet, fd *ast.FuncDecl, rd string) []diagnostic {
	w := &discardWalker{fset: fset, rd: rd, fn: fd.Name.Name}
	w.scan(fd.Body)
	if !w.recvs || w.deferred {
		// A function that never consumes hands the reader elsewhere (the
		// combinator-wiring pattern); a deferred Discard covers all paths.
		return nil
	}
	w.stmts(fd.Body.List, false)
	return w.diags
}

type discardWalker struct {
	fset     *token.FileSet
	rd       string // reader parameter name
	fn       string
	okvars   map[string]bool // variables assigned from rd.recv / rd.recvTimeout
	recvs    bool            // the body consumes from rd directly
	deferred bool            // defer rd.Discard() seen
	diags    []diagnostic
}

// scan collects the recv-result variables and the defer/recv facts in one
// pre-pass over the body, ignoring function literals (their returns are not
// this function's returns, and their locals are not its locals).
func (w *discardWalker) scan(body *ast.BlockStmt) {
	w.okvars = map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if w.isReaderCall(n.Call, "Discard") {
				w.deferred = true
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && w.isRecvCall(n.Rhs[0]) {
				w.recvs = true
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						w.okvars[id.Name] = true
					}
				}
			}
		case *ast.CallExpr:
			if w.isRecvCall(n) {
				w.recvs = true
			}
		}
		return true
	})
}

func (w *discardWalker) isReaderCall(call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == w.rd
}

func (w *discardWalker) isRecvCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return w.isReaderCall(call, "recv") || w.isReaderCall(call, "recvTimeout")
}

// stmts checks one statement list.  guarded reports whether the list is
// the body of an `if !ok` guard on a recv result: returns there observe a
// closed, fully drained stream and need no Discard.
func (w *discardWalker) stmts(list []ast.Stmt, guarded bool) {
	released := false // an earlier statement in this block released the reader
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			if !guarded && !released {
				w.diags = append(w.diags, diagnostic{
					analyzer: "streamdiscard",
					pos:      w.fset.Position(s.Pos()),
					msg: fmt.Sprintf("%s: return without %s.Discard(): blocked upstream senders leak",
						w.fn, w.rd),
				})
			}
		case *ast.IfStmt:
			w.stmts(s.Body.List, guarded || released || w.isOkGuard(s.Cond))
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				w.stmts(el.List, guarded || released)
			case *ast.IfStmt:
				w.stmts([]ast.Stmt{el}, guarded || released)
			}
		case *ast.ForStmt:
			w.stmts(s.Body.List, guarded || released)
		case *ast.RangeStmt:
			w.stmts(s.Body.List, guarded || released)
		case *ast.BlockStmt:
			w.stmts(s.List, guarded || released)
		case *ast.LabeledStmt:
			w.stmts([]ast.Stmt{s.Stmt}, guarded || released)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, guarded || released)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, guarded || released)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.stmts(cc.Body, guarded || released)
				}
			}
		}
		if w.releases(s) {
			released = true
		}
	}
}

// isOkGuard reports whether cond is `!ok` (possibly one arm of an `||`)
// for a variable assigned from recv/recvTimeout.
func (w *discardWalker) isOkGuard(cond ast.Expr) bool {
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op != token.NOT {
			return false
		}
		id, ok := e.X.(*ast.Ident)
		return ok && w.okvars[id.Name]
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return w.isOkGuard(e.X) || w.isOkGuard(e.Y)
		}
	case *ast.ParenExpr:
		return w.isOkGuard(e.X)
	}
	return false
}

// releases reports whether a statement's subtree calls rd.Discard() or
// passes rd to another function (including a spawned closure),
// transferring the drain obligation.
func (w *discardWalker) releases(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if w.isReaderCall(n, "Discard") {
				found = true
				return false
			}
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok && id.Name == w.rd {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
