// Command sacrun interprets a Core SaC source file (§2 of the paper) and
// calls one of its functions with integer arguments.
//
// Usage:
//
//	sacrun [-workers w] [-fun name] file.sac [intArg...]
//	sacrun -demo            # run the paper's §2 examples
//
// The prelude (the paper's ++ operator) is always available.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/sac"
	saclang "repro/sac/lang"
)

const demo = `
int[*] ex1() {
    res = with { ([0,0] <= iv < [3,5]) : 42; } : genarray( [3,5], 0);
    return( res);
}
int[*] ex2() {
    res = with { ([0] <= iv < [5]) : iv[0]; } : genarray( [5], 0);
    return( res);
}
int[*] ex3() {
    res = with { ([1] <= iv < [4]) : 42; } : genarray( [5], 0);
    return( res);
}
int[*] ex4() {
    res = with { ([1] <= iv < [4]) : 1;
                 ([3] <= iv < [5]) : 2;
    } : genarray( [6], 0);
    return( res);
}
int[*] ex5() {
    A = with { ([1] <= iv < [4]) : 1;
               ([3] <= iv < [5]) : 2;
    } : genarray( [6], 0);
    res = with { ([0] <= iv < [3]) : 3; } : modarray( A);
    return( res);
}
int[*] ex6() {
    return( [1,2,3] ++ [4,5]);
}
`

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sacrun:", err)
		os.Exit(1)
	}
}

// run is the testable command body: parse flags, interpret the program, and
// print results (and any snet_out emissions) to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sacrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers = fs.Int("workers", 1, "with-loop workers ('SaC threads')")
		grain   = fs.Int("grain", 0, "with-loop minimum chunk size (0: sched default)")
		fun     = fs.String("fun", "main", "function to call")
		runDemo = fs.Bool("demo", false, "run the paper's §2 examples")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pool := sac.NewPoolWithGrain(*workers, *grain) // grain < 1: sched default
	if *runDemo {
		prog, err := saclang.Parse(saclang.Prelude + demo)
		if err != nil {
			return err
		}
		itp := saclang.New(prog, pool)
		itp.SetOutput(stdout)
		for _, name := range []string{"ex1", "ex2", "ex3", "ex4", "ex5", "ex6"} {
			out, err := itp.Call(name, nil, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s = %s\n", name, out[0])
		}
		return nil
	}

	if fs.NArg() < 1 {
		return fmt.Errorf("usage: sacrun [-workers w] [-fun name] file.sac [intArg...]")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := saclang.Parse(saclang.Prelude + string(src))
	if err != nil {
		return err
	}
	itp := saclang.New(prog, pool)
	itp.SetOutput(stdout)

	var callArgs []saclang.Value
	for _, a := range fs.Args()[1:] {
		n, err := strconv.Atoi(a)
		if err != nil {
			return fmt.Errorf("argument %q is not an integer", a)
		}
		callArgs = append(callArgs, saclang.IntScalar(n))
	}
	out, err := itp.Call(*fun, callArgs, func(variant int, vals []saclang.Value) error {
		fmt.Fprintf(stdout, "snet_out(%d", variant)
		for _, v := range vals {
			fmt.Fprintf(stdout, ", %s", v)
		}
		fmt.Fprintln(stdout, ")")
		return nil
	})
	if err != nil {
		return err
	}
	for i, v := range out {
		fmt.Fprintf(stdout, "result[%d] = %s\n", i, v)
	}
	return nil
}
