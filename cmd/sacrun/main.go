// Command sacrun interprets a Core SaC source file (§2 of the paper) and
// calls one of its functions with integer arguments.
//
// Usage:
//
//	sacrun [-workers w] [-fun name] file.sac [intArg...]
//	sacrun -demo            # run the paper's §2 examples
//
// The prelude (the paper's ++ operator) is always available.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/sac"
	saclang "repro/sac/lang"
)

const demo = `
int[*] ex1() {
    res = with { ([0,0] <= iv < [3,5]) : 42; } : genarray( [3,5], 0);
    return( res);
}
int[*] ex2() {
    res = with { ([0] <= iv < [5]) : iv[0]; } : genarray( [5], 0);
    return( res);
}
int[*] ex3() {
    res = with { ([1] <= iv < [4]) : 42; } : genarray( [5], 0);
    return( res);
}
int[*] ex4() {
    res = with { ([1] <= iv < [4]) : 1;
                 ([3] <= iv < [5]) : 2;
    } : genarray( [6], 0);
    return( res);
}
int[*] ex5() {
    A = with { ([1] <= iv < [4]) : 1;
               ([3] <= iv < [5]) : 2;
    } : genarray( [6], 0);
    res = with { ([0] <= iv < [3]) : 3; } : modarray( A);
    return( res);
}
int[*] ex6() {
    return( [1,2,3] ++ [4,5]);
}
`

func main() {
	var (
		workers = flag.Int("workers", 1, "with-loop workers ('SaC threads')")
		fun     = flag.String("fun", "main", "function to call")
		runDemo = flag.Bool("demo", false, "run the paper's §2 examples")
	)
	flag.Parse()

	pool := sac.NewPool(*workers)
	if *runDemo {
		prog, err := saclang.Parse(saclang.Prelude + demo)
		if err != nil {
			fatal(err)
		}
		itp := saclang.New(prog, pool)
		itp.SetOutput(os.Stdout)
		for _, name := range []string{"ex1", "ex2", "ex3", "ex4", "ex5", "ex6"} {
			out, err := itp.Call(name, nil, nil)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s = %s\n", name, out[0])
		}
		return
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: sacrun [-workers w] [-fun name] file.sac [intArg...]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := saclang.Parse(saclang.Prelude + string(src))
	if err != nil {
		fatal(err)
	}
	itp := saclang.New(prog, pool)
	itp.SetOutput(os.Stdout)

	var args []saclang.Value
	for _, a := range flag.Args()[1:] {
		n, err := strconv.Atoi(a)
		if err != nil {
			fatal(fmt.Errorf("argument %q is not an integer", a))
		}
		args = append(args, saclang.IntScalar(n))
	}
	out, err := itp.Call(*fun, args, func(variant int, vals []saclang.Value) error {
		fmt.Printf("snet_out(%d", variant)
		for _, v := range vals {
			fmt.Printf(", %s", v)
		}
		fmt.Println(")")
		return nil
	})
	if err != nil {
		fatal(err)
	}
	for i, v := range out {
		fmt.Printf("result[%d] = %s\n", i, v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sacrun:", err)
	os.Exit(1)
}
