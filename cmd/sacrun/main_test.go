package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSac(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.sac")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDemo(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-demo"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -demo: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{
		"ex1 =", "ex2 = [0,1,2,3,4]", "ex6 = [1,2,3,4,5]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q:\n%s", want, out)
		}
	}
}

func TestRunProgramWithArgs(t *testing.T) {
	path := writeSac(t, `
int add(int a, int b) {
    return( a + b);
}
`)
	var stdout, stderr strings.Builder
	if err := run([]string{"-fun", "add", path, "19", "23"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "result[0] = 42") {
		t.Errorf("expected result[0] = 42:\n%s", stdout.String())
	}
}

func TestRunSnetOutEmissions(t *testing.T) {
	path := writeSac(t, `
int emit(int n) {
    snet_out( 1, n + 1);
    return( n);
}
`)
	var stdout, stderr strings.Builder
	if err := run([]string{"-fun", "emit", "-workers", "2", path, "7"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "snet_out(1, 8)") {
		t.Errorf("expected snet_out emission:\n%s", out)
	}
	if !strings.Contains(out, "result[0] = 7") {
		t.Errorf("expected return value:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"/nonexistent/x.sac"}, &stdout, &stderr); err == nil {
		t.Error("expected error for missing file")
	}
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Error("expected usage error with no arguments")
	}
	bad := writeSac(t, "int broken( {")
	if err := run([]string{bad}, &stdout, &stderr); err == nil {
		t.Error("expected parse error")
	}
}
