// The paper's case study end to end: solve sudoku puzzles with the
// sequential §3 solver and with all three S-Net networks of §5, printing
// the unfolding statistics that the paper reasons about (replica counts,
// parallel widths, box instances).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/sac"
	"repro/snet"
	"repro/sudoku"
)

func main() {
	pool := sac.NewPool(1)
	puzzle := sudoku.Hard() // "AI Escargot"
	fmt.Println("puzzle (AI Escargot):")
	fmt.Println(puzzle)

	// Sequential solver (§3).
	t0 := time.Now()
	seq, ok := sudoku.SolveBoard(pool, puzzle)
	if !ok {
		log.Fatal("sequential solver failed")
	}
	fmt.Printf("sequential solve: %v\n\n", time.Since(t0))

	run := func(name string, net snet.Node) {
		t0 := time.Now()
		got, stats, err := sudoku.SolveWithNet(context.Background(), net, puzzle)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if got == nil || !got.Equal(seq) {
			log.Fatalf("%s: wrong solution", name)
		}
		fmt.Printf("%-22s %8v   stages=%-3d width=%-2d boxes=%d\n",
			name, time.Since(t0).Round(time.Microsecond),
			stats.Counter("star.solve_loop.replicas"),
			stats.Max("split.level_split.width"),
			stats.Counter("box.solveOneLevel.instances"))
	}

	run("fig1 (pipeline)", sudoku.Fig1Net(sudoku.NetConfig{Pool: pool}))
	run("fig2 (full unfold)", sudoku.Fig2Net(sudoku.NetConfig{Pool: pool}))
	run("fig3 (throttled %4)", sudoku.Fig3Net(sudoku.NetConfig{Pool: pool, Throttle: 4, ExitLevel: 40}))

	fmt.Println("\nsolution:")
	fmt.Println(seq)
}
