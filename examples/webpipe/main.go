// The request/response workload run from its textual form: the .snet
// program is parsed and type-checked, the registry binds the pipeline boxes
// from internal/workloads, and every response is verified against the
// reference.
package main

import (
	"context"
	_ "embed"
	"flag"
	"fmt"
	"log"

	"repro/internal/workloads"
	"repro/snet"
	"repro/snet/lang"
)

//go:embed webpipe.snet
var src string

func main() {
	requests := flag.Int("requests", 60, "requests to push through the pipeline")
	flag.Parse()

	reg := lang.NewRegistry()
	for name, box := range workloads.WebPipeBoxes() {
		reg.RegisterNode(name, box)
	}
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := lang.CompileNet(prog, "webpipe", reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("webpipe: input type %v\n", plan.In())

	in := make([]*snet.Record, *requests)
	for i := range in {
		in[i] = workloads.WebPipeRequest(i)
	}
	out, stats, err := plan.RunAll(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	if len(out) != *requests {
		log.Fatalf("expected %d responses, got %d", *requests, len(out))
	}
	byStatus := map[int]int{}
	for _, rec := range out {
		id := rec.MustTag("id")
		wantResp, wantStatus := workloads.WebPipeReference(workloads.WebPipeURL(id))
		if rec.MustField("resp").(string) != wantResp || rec.MustTag("status") != wantStatus {
			log.Fatalf("request %d diverged from reference", id)
		}
		byStatus[rec.MustTag("status")]++
	}
	fmt.Printf("all %d responses match the reference; status mix: %v\n", *requests, byStatus)
	fmt.Printf("handler calls: api=%d page=%d asset=%d\n",
		stats.Counter("box.api.calls"),
		stats.Counter("box.page.calls"),
		stats.Counter("box.asset.calls"))
}
