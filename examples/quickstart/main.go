// Quickstart: build a tiny S-Net streaming network from one box and one
// filter, start it, and stream records through — the smallest end-to-end
// use of the coordination layer.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/snet"
)

func main() {
	// A box is a stateless stream transformer declared by a signature:
	// it consumes records carrying tag <n> and emits the running square.
	square := snet.NewBox("square",
		snet.MustParseSignature("(<n>) -> (<n>, <squared>)"),
		func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			return out.Out(1, n, n*n)
		})

	// A filter is coordination-level housekeeping (§4 of the paper):
	// here it renames and rescales tags with tag arithmetic.
	scale := snet.MustFilter("{<squared>} -> {<result>=<squared>*10}")

	// Serial composition (the paper's ..) pipelines the two components.
	net := snet.Serial(square, scale)

	// The network's type signature is inferred, not declared:
	in, out := snet.Infer(net)
	fmt.Printf("network type: %v -> %v\n", in, out)

	h := snet.Start(context.Background(), net)
	go func() {
		for n := 1; n <= 5; n++ {
			if err := h.Send(snet.NewRecord().SetTag("n", n)); err != nil {
				log.Fatal(err)
			}
		}
		h.Close()
	}()

	for rec := range h.Out() {
		n, _ := rec.Tag("n") // <n> survives by flow inheritance
		r, _ := rec.Tag("result")
		fmt.Printf("n=%d -> result=%d\n", n, r)
	}
}
