// Quickstart: build a tiny S-Net streaming network from one box and one
// filter, compile it into a typed Plan, start it, and stream records
// through — the smallest end-to-end use of the coordination layer.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/snet"
)

func main() {
	// A box is a stateless stream transformer declared by a signature:
	// it consumes records carrying tag <n> and emits the running square.
	square := snet.NewBox("square",
		snet.MustParseSignature("(<n>) -> (<n>, <squared>)"),
		func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			return out.Out(1, n, n*n)
		})

	// A filter is coordination-level housekeeping (§4 of the paper):
	// here it renames and rescales tags with tag arithmetic.
	scale := snet.MustFilter("{<squared>} -> {<result>=<squared>*10}")

	// Serial composition (the paper's ..) pipelines the two components.
	net := snet.Serial(square, scale)

	// Compile infers the network's type signature bottom-up and rejects
	// structural defects (unreachable branches, signature mismatches)
	// before anything runs; the Plan holds the precomputed routing tables
	// every run shares.
	plan, err := snet.Compile(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network type: %v -> %v\n", plan.In(), plan.Out())

	h := plan.Start(context.Background())
	go func() {
		for n := 1; n <= 5; n++ {
			if err := h.Send(snet.NewRecord().SetTag("n", n)); err != nil {
				log.Fatal(err)
			}
		}
		h.Close()
	}()

	for rec := range h.Out() {
		n, _ := rec.Tag("n") // <n> survives by flow inheritance
		r, _ := rec.Tag("result")
		fmt.Printf("n=%d -> result=%d\n", n, r)
	}
}
