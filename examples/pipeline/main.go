// A numerical stream pipeline in the paper's two-layer style: each box is a
// data-parallel SaC-like array computation (with-loops over a matrix), and
// S-Net coordinates a pipeline of such stages over a stream of frames —
// the "numerical applications on large homogeneous data structures" that
// motivate the paper's introduction.
//
// Stages: generate frame -> 5-point stencil smooth (with-loop) ->
// per-frame statistics (fold) -> threshold filter on a tag.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sac"
	"repro/snet"
)

const side = 256

// smoothBox applies a 5-point stencil via a genarray-with-loop — the
// classic data-parallel kernel shape (cf. the NAS MG references in §1).
func smoothBox(p *sac.Pool) snet.Node {
	return snet.NewBox("smooth",
		snet.MustParseSignature("(frame) -> (frame)"),
		func(args []any, out *snet.Emitter) error {
			src := args[0].(*sac.Array[float64])
			sh := src.Shape()
			res := sac.Genarray(p, sh, 0.0,
				sac.GenHalfOpen([]int{1, 1}, []int{sh[0] - 1, sh[1] - 1},
					func(iv []int) float64 {
						i, j := iv[0], iv[1]
						return 0.2 * (src.At(i, j) + src.At(i-1, j) +
							src.At(i+1, j) + src.At(i, j-1) + src.At(i, j+1))
					}))
			return out.Out(1, res)
		})
}

// statsBox reduces each frame to its energy with a fold-with-loop and
// turns it into a coordination-level tag (scaled to int, as S-Net tags are
// integers).
func statsBox(p *sac.Pool) snet.Node {
	return snet.NewBox("stats",
		snet.MustParseSignature("(frame) -> (frame, <energy>)"),
		func(args []any, out *snet.Emitter) error {
			f := args[0].(*sac.Array[float64])
			sh := f.Shape()
			sum := sac.Fold(p, 0.0, func(a, b float64) float64 { return a + b },
				sac.GenHalfOpen([]int{0, 0}, sh, func(iv []int) float64 {
					v := f.At(iv[0], iv[1])
					return v * v
				}))
			return out.Out(1, f, int(sum))
		})
}

func main() {
	pool := sac.NewPool(2) // the with-loops inside the boxes parallelise

	// Three smoothing stages in series, then statistics, then a
	// coordination-level threshold implemented purely with a filter and
	// parallel routing: high-energy frames keep a <hot> tag.
	classify := snet.Parallel(
		snet.MustFilter("{<energy>} | <energy> >= 15815 -> {<energy>=<energy>, <hot>=1}"),
		snet.MustFilter("{<energy>} | <energy> < 15815 -> {<energy>=<energy>}"),
	)
	net := snet.Serial(smoothBox(pool), smoothBox(pool), smoothBox(pool),
		statsBox(pool), classify)

	h := snet.Start(context.Background(), net)
	go func() {
		for k := 0; k < 8; k++ {
			frame := sac.Genarray(pool, []int{side, side}, 0.0,
				sac.GenHalfOpen([]int{0, 0}, []int{side, side},
					func(iv []int) float64 {
						return float64((iv[0]*iv[1]*(k+1))%97) / 97.0
					}))
			rec := snet.NewRecord().SetField("frame", frame).SetTag("id", k)
			if err := h.Send(rec); err != nil {
				log.Fatal(err)
			}
		}
		h.Close()
	}()

	hot := 0
	for rec := range h.Out() {
		id, _ := rec.Tag("id")
		energy, _ := rec.Tag("energy")
		_, isHot := rec.Tag("hot")
		if isHot {
			hot++
		}
		fmt.Printf("frame %d: energy=%-8d hot=%v\n", id, energy, isHot)
	}
	fmt.Printf("%d hot frames\n", hot)
}
