// The textual S-Net language in action: the Fig. 2 sudoku network written
// exactly as the paper draws it, parsed, type-checked, bound to box
// implementations through a registry, and run.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sac"
	"repro/snet"
	"repro/snet/lang"
	"repro/sudoku"
)

// The network of Fig. 2 with full unfolding, in the paper's own notation:
// the filter seeds the <k> tag, the parallel replicator !!<k> fans sibling
// alternatives out, the serial replicator ** unfolds the search depth, and
// {<done>} extracts finished boards.
const src = `
box computeOpts (board) -> (board, opts);
box solveOneLevel (board, opts) -> (board, opts, <k>) | (board, <done>);

net fig2 connect
    computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>});
`

func main() {
	pool := sac.NewPool(1)

	// The registry plays the SaC compiler's role: it binds the declared
	// box names to executable implementations.
	reg := lang.NewRegistry().
		RegisterNode("computeOpts", sudoku.ComputeOptsBox(pool)).
		RegisterNode("solveOneLevel", sudoku.SolveOneLevelBoxFig2(pool))

	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed program:")
	fmt.Println(prog)

	net, err := lang.Build(prog, "fig2", reg)
	if err != nil {
		log.Fatal(err)
	}
	in, out, diags := snet.Check(net)
	fmt.Printf("inferred type: %v -> %v\n", in, out)
	for _, d := range diags {
		fmt.Println("  ", d)
	}

	puzzle := sudoku.Medium()
	board, stats, err := sudoku.SolveWithNet(context.Background(), net, puzzle)
	if err != nil {
		log.Fatal(err)
	}
	if board == nil {
		log.Fatal("no solution found")
	}
	fmt.Println("\nsolution:")
	fmt.Println(board)
	fmt.Printf("pipeline stages: %d, solveOneLevel instances: %d\n",
		stats.Counter("star.fig2.star.replicas"),
		stats.Counter("box.solveOneLevel.instances"))
}
