// The coordination pattern of the paper generalised to another search
// problem: N-queens through the same network shape as Fig. 2 — a
// place-one-piece box inside a tag-indexed parallel replicator inside a
// serial replicator.  This is the "representative for more complex search
// problems" claim of the abstract: nothing in the network is
// sudoku-specific.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/snet"
)

// board is a partial placement: queens[i] = column of the queen in row i.
type board struct {
	n      int
	queens []int
}

func (b board) safe(col int) bool {
	row := len(b.queens)
	for r, c := range b.queens {
		if c == col || c-col == row-r || col-c == row-r {
			return false
		}
	}
	return true
}

func (b board) place(col int) board {
	q := append(append([]int(nil), b.queens...), col)
	return board{n: b.n, queens: q}
}

func main() {
	n := flag.Int("n", 8, "board size")
	all := flag.Bool("all", false, "count all solutions instead of stopping at the first")
	flag.Parse()

	// placeOne emits one record per safe column for the next row —
	// exactly solveOneLevel's shape: alternatives become records, the
	// tried choice becomes the replication tag <k>.
	placeOne := snet.NewBox("placeOne",
		snet.MustParseSignature("(board) -> (board, <k>) | (board, <done>)"),
		func(args []any, out *snet.Emitter) error {
			b := args[0].(board)
			if len(b.queens) == b.n {
				return out.Out(2, b, 1)
			}
			for col := 0; col < b.n; col++ {
				if !b.safe(col) {
					continue
				}
				if err := out.Out(1, b.place(col), col%4); err != nil {
					return err
				}
			}
			return nil
		})

	// The Fig. 2 network, verbatim in structure:
	// [{} -> {<k>=1}] .. ((placeOne !! <k>) ** {<done>})
	net := snet.Serial(
		snet.MustFilter("{} -> {<k>=1}"),
		snet.NamedStar("search",
			snet.NamedSplit("fan", placeOne, "k"),
			snet.MustParsePattern("{<done>}")),
	)

	input := []*snet.Record{snet.NewRecord().SetField("board", board{n: *n})}
	if *all {
		out, stats, err := snet.RunAll(context.Background(), net, input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-queens: %d solutions (%d pipeline stages, %d box instances)\n",
			*n, len(out),
			stats.Counter("star.search.replicas"),
			stats.Counter("box.placeOne.instances"))
		return
	}
	rec, stats, err := snet.RunUntil(context.Background(), net, input,
		func(r *snet.Record) bool { _, done := r.Tag("done"); return done })
	if err != nil {
		log.Fatal(err)
	}
	if rec == nil {
		fmt.Printf("%d-queens: no solution\n", *n)
		return
	}
	v, _ := rec.Field("board")
	b := v.(board)
	fmt.Printf("%d-queens solution (found with %d stages unfolded):\n",
		*n, stats.Counter("star.search.replicas"))
	for _, c := range b.queens {
		for j := 0; j < b.n; j++ {
			if j == c {
				fmt.Print(" Q")
			} else {
				fmt.Print(" .")
			}
		}
		fmt.Println()
	}
}
