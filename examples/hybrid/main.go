// The paper's actual two-layer configuration: the box functions are the
// paper's own SaC source (§3/§5), interpreted by the Core SaC interpreter,
// while S-Net coordinates them in the Fig. 1 network.  The coordination
// layer never looks inside the SaC values — fields are opaque, exactly as
// §4 prescribes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/sac"
	saclang "repro/sac/lang"
	"repro/sudoku"
)

func main() {
	// Show that the boxes really are interpreted SaC: run the paper's §2
	// concatenation example directly first.
	prog := saclang.MustParse(saclang.Prelude + `
		int[*] main() {
			a = [1,2,3];
			b = [4,5];
			return( a ++ b);
		}`)
	out, err := saclang.New(prog, sac.NewPool(1)).Call("main", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SaC: [1,2,3] ++ [4,5] = %s\n\n", out[0])

	// Now the hybrid solver: interpreted addNumber/solveOneLevel inside
	// the Fig. 1 S-Net network.
	boxes := sudoku.NewSacBoxes(sac.NewPool(2))
	puzzle := sudoku.Easy()
	fmt.Println("puzzle:")
	fmt.Println(puzzle)

	t0 := time.Now()
	board, stats, err := boxes.SolveHybrid(context.Background(), puzzle)
	if err != nil {
		log.Fatal(err)
	}
	if board == nil {
		log.Fatal("no solution")
	}
	fmt.Printf("solved by interpreted SaC boxes in %v (%d pipeline stages, %d box calls)\n\n",
		time.Since(t0).Round(time.Millisecond),
		stats.Counter("star.solve_loop.replicas"),
		stats.Counter("box.solveOneLevel.calls"))
	fmt.Println(board)
}
