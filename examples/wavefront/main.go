// The wavefront workload run from its textual form: the .snet program is
// parsed and type-checked, the registry binds the declared boxes to the
// implementations in internal/workloads, and the result is verified against
// the sequential dynamic-programming reference.
package main

import (
	"context"
	_ "embed"
	"flag"
	"fmt"
	"log"

	"repro/internal/workloads"
	"repro/snet"
	"repro/snet/lang"
)

//go:embed wavefront.snet
var src string

func main() {
	n := flag.Int("n", 64, "grid size (n >= 2)")
	seed := flag.Int64("seed", 61, "cost-matrix seed")
	flag.Parse()

	reg := lang.NewRegistry()
	for name, box := range workloads.WavefrontBoxes(*n, *seed) {
		reg.RegisterNode(name, box)
	}
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := lang.CompileNet(prog, "wavefront", reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wavefront: %d×%d grid, %d cells, input type %v\n",
		*n, *n, workloads.WavefrontCells(*n), plan.In())

	out, stats, err := plan.RunAll(context.Background(),
		[]*snet.Record{workloads.WavefrontSeed()})
	if err != nil {
		log.Fatal(err)
	}
	if len(out) != 1 {
		log.Fatalf("expected one result record, got %d", len(out))
	}
	got := out[0].MustField("result").(int)
	want := workloads.WavefrontReference(*n, *seed)
	fmt.Printf("v(n-1,n-1) = %d (reference %d, match=%v)\n", got, want, got == want)
	fmt.Printf("star stages: %d, joins fired: %d, cell box calls: %d\n",
		stats.Counter("star.wavefront.star.replicas"),
		stats.SumPrefix("sync."),
		stats.Counter("box.cell.calls"))
	if got != want {
		log.Fatal("result diverged from reference")
	}
}
