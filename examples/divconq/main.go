// The divide-and-conquer workload run from its textual form: the .snet
// program is parsed and type-checked, the registry binds the divide/conquer
// boxes from internal/workloads, and every job's output is verified against
// sort.Ints.
package main

import (
	"context"
	_ "embed"
	"flag"
	"fmt"
	"log"

	"repro/internal/workloads"
	"repro/snet"
	"repro/snet/lang"
)

//go:embed mergesort.snet
var src string

func main() {
	jobs := flag.Int("jobs", 4, "concurrent sort jobs")
	n := flag.Int("n", 4096, "elements per job (power of two)")
	leaf := flag.Int("leaf", 64, "leaf segment size (power of two)")
	seed := flag.Int64("seed", 23, "input data seed")
	flag.Parse()

	reg := lang.NewRegistry()
	for name, box := range workloads.DivConqBoxes(*n, *leaf) {
		reg.RegisterNode(name, box)
	}
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := lang.CompileNet(prog, "mergesort", reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mergesort: %d jobs × %d elements, leaf %d, input type %v\n",
		*jobs, *n, *leaf, plan.In())

	// The composite <p> key space exceeds the default split-width fold;
	// folding must never collapse two live joins onto one replica.
	out, stats, err := plan.RunAll(context.Background(),
		workloads.DivConqJobs(*jobs, *n, *seed),
		snet.WithMaxSplitWidth(workloads.DivConqSplitWidth(*jobs, *n, *leaf)))
	if err != nil {
		log.Fatal(err)
	}
	if len(out) != *jobs {
		log.Fatalf("expected %d output records, got %d", *jobs, len(out))
	}
	for _, rec := range out {
		job := rec.MustTag("job")
		got := rec.MustField("out").([]int)
		want := workloads.DivConqReference(workloads.DivConqInput(*n, *seed, job))
		for i := range got {
			if got[i] != want[i] {
				log.Fatalf("job %d diverged from sort.Ints at element %d", job, i)
			}
		}
	}
	fmt.Printf("all %d jobs sorted correctly (%d elements total)\n",
		*jobs, workloads.DivConqElements(*jobs, *n))
	fmt.Printf("star stages: %d, merges: %d, divide calls: %d\n",
		stats.Counter("star.mergesort.star.replicas"),
		stats.SumPrefix("sync."),
		stats.Counter("box.divide.calls"))
}
