// Package sudoku is the public API of the paper's case study: n²×n² sudoku
// solving as a search problem (§3), restructured into S-Net stream networks
// (§5, Figures 1–3).
//
//	puzzle := sudoku.Easy()
//	// sequential §3 solver
//	solved, ok := sudoku.SolveBoard(sac.NewPool(1), puzzle)
//	// Fig. 2 network: full unfolding over tag <k>
//	net := sudoku.Fig2Net(sudoku.NetConfig{})
//	board, stats, err := sudoku.SolveWithNet(ctx, net, puzzle)
package sudoku

import internal "repro/internal/sudoku"

type (
	// Board is an n²×n² sudoku board (0 = empty), immutable by
	// convention.
	Board = internal.Board
	// Options is the paper's bool[N,N,N] cube of remaining choices.
	Options = internal.Options
	// NetConfig selects the solver-network variant and parameters.
	NetConfig = internal.NetConfig
	// SolveOneLevelOutput is one record emitted by SolveOneLevel.
	SolveOneLevelOutput = internal.SolveOneLevelOutput
	// SacBoxes wires the paper's interpreted SaC code into S-Net boxes.
	SacBoxes = internal.SacBoxes
)

// Boards and puzzles.
var (
	NewBoard       = internal.NewBoard
	FromGrid       = internal.FromGrid
	Parse          = internal.Parse
	MustParse      = internal.MustParse
	Easy           = internal.Easy
	EasySolution   = internal.EasySolution
	Medium         = internal.Medium
	Hard           = internal.Hard
	Fixed9x9       = internal.Fixed9x9
	Generate       = internal.Generate
	GenerateSolved = internal.GenerateSolved
)

// Solver primitives (§3).
var (
	NewOptions     = internal.NewOptions
	AddNumber      = internal.AddNumber
	ComputeOpts    = internal.ComputeOpts
	IsStuck        = internal.IsStuck
	FindMinTrues   = internal.FindMinTrues
	Solve          = internal.Solve
	SolveBoard     = internal.SolveBoard
	CountSolutions = internal.CountSolutions
	SolveOneLevel  = internal.SolveOneLevel
)

// S-Net boxes and networks (§5).
var (
	ComputeOptsBox       = internal.ComputeOptsBox
	SolveOneLevelBoxFig1 = internal.SolveOneLevelBoxFig1
	SolveOneLevelBoxFig2 = internal.SolveOneLevelBoxFig2
	SolveOneLevelBoxFig3 = internal.SolveOneLevelBoxFig3
	SolveBox             = internal.SolveBox
	Fig1Net              = internal.Fig1Net
	Fig2Net              = internal.Fig2Net
	Fig3Net              = internal.Fig3Net
	SolveWithNet         = internal.SolveWithNet
)

// Hybrid (interpreted SaC) configuration.
var (
	NewSacBoxes    = internal.NewSacBoxes
	BoardToValue   = internal.BoardToValue
	ValueToBoard   = internal.ValueToBoard
	OptionsToValue = internal.OptionsToValue
	ValueToOptions = internal.ValueToOptions
)
